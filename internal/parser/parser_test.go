package parser

import (
	"strings"
	"testing"

	"crowddb/internal/sqltypes"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

// --- DDL, straight from the paper ---

func TestParsePaperExample1(t *testing.T) {
	s := mustParse(t, `CREATE TABLE Talk (
		title STRING PRIMARY KEY,
		abstract CROWD STRING,
		nb_attendees CROWD INTEGER );`)
	ct, ok := s.(*CreateTable)
	if !ok {
		t.Fatalf("want CreateTable, got %T", s)
	}
	if ct.Crowd {
		t.Error("Talk is not a CROWD table")
	}
	if len(ct.Columns) != 3 {
		t.Fatalf("want 3 columns, got %d", len(ct.Columns))
	}
	if !ct.Columns[0].PrimaryKey || ct.Columns[0].Crowd {
		t.Error("title: PK, not crowd")
	}
	if !ct.Columns[1].Crowd || ct.Columns[1].Type != sqltypes.TypeString {
		t.Error("abstract must be CROWD STRING")
	}
	if !ct.Columns[2].Crowd || ct.Columns[2].Type != sqltypes.TypeInt {
		t.Error("nb_attendees must be CROWD INTEGER")
	}
}

func TestParsePaperExample2(t *testing.T) {
	s := mustParse(t, `CREATE CROWD TABLE NotableAttendee (
		name STRING PRIMARY KEY,
		title STRING,
		FOREIGN KEY (title) REF Talk(title) );`)
	ct := s.(*CreateTable)
	if !ct.Crowd {
		t.Fatal("NotableAttendee must be a CROWD table")
	}
	if len(ct.ForeignKeys) != 1 {
		t.Fatalf("want 1 FK, got %d", len(ct.ForeignKeys))
	}
	fk := ct.ForeignKeys[0]
	if fk.RefTable != "Talk" || fk.Columns[0] != "title" || fk.RefColumns[0] != "title" {
		t.Errorf("FK parsed wrong: %+v", fk)
	}
}

func TestParsePaperExample3(t *testing.T) {
	s := mustParse(t, `SELECT title FROM Talk
		ORDER BY CROWDORDER(p, "Which talk did you like better")
		LIMIT 10;`)
	sel := s.(*Select)
	if sel.Limit != 10 {
		t.Errorf("limit: %d", sel.Limit)
	}
	if len(sel.OrderBy) != 1 {
		t.Fatal("one order key expected")
	}
	fc, ok := sel.OrderBy[0].Expr.(*FuncCall)
	if !ok || fc.Name != "CROWDORDER" {
		t.Fatalf("order key must be CROWDORDER call, got %v", sel.OrderBy[0].Expr)
	}
	if !fc.IsCrowdFunc() {
		t.Error("CROWDORDER must be a crowd func")
	}
	q := fc.Args[1].(*Literal)
	if q.Val.Str() != "Which talk did you like better" {
		t.Errorf("question: %q", q.Val.Str())
	}
}

func TestParseSelectAbstractWhereTitle(t *testing.T) {
	s := mustParse(t, `SELECT abstract FROM paper WHERE title = "CrowdDB"`)
	sel := s.(*Select)
	be := sel.Where.(*BinaryExpr)
	if be.Op != "=" {
		t.Errorf("op %q", be.Op)
	}
	if be.L.(*ColumnRef).Name != "title" {
		t.Error("lhs")
	}
	if be.R.(*Literal).Val.Str() != "CrowdDB" {
		t.Error("rhs")
	}
}

// --- CrowdSQL specifics ---

func TestParseCNullLiteral(t *testing.T) {
	s := mustParse(t, "INSERT INTO Talk (title, abstract) VALUES ('X', CNULL)")
	ins := s.(*Insert)
	lit := ins.Rows[0][1].(*Literal)
	if !lit.Val.IsCNull() {
		t.Error("CNULL literal lost")
	}
}

func TestParseIsCNull(t *testing.T) {
	s := mustParse(t, "SELECT title FROM Talk WHERE abstract IS CNULL")
	sel := s.(*Select)
	isn := sel.Where.(*IsNullExpr)
	if !isn.CNull || isn.Neg {
		t.Errorf("IS CNULL parsed wrong: %+v", isn)
	}
	s = mustParse(t, "SELECT title FROM Talk WHERE abstract IS NOT CNULL")
	if !s.(*Select).Where.(*IsNullExpr).Neg {
		t.Error("IS NOT CNULL")
	}
}

func TestParseCrowdEqualFunction(t *testing.T) {
	s := mustParse(t, `SELECT * FROM company WHERE CROWDEQUAL(name, 'UC Berkeley')`)
	sel := s.(*Select)
	fc := sel.Where.(*FuncCall)
	if fc.Name != "CROWDEQUAL" || len(fc.Args) != 2 {
		t.Fatalf("%+v", fc)
	}
	if !HasCrowdFunc(sel.Where) {
		t.Error("HasCrowdFunc")
	}
}

func TestParseCrowdEqualShorthand(t *testing.T) {
	s := mustParse(t, `SELECT * FROM company WHERE name ~= 'UC Berkeley'`)
	be := s.(*Select).Where.(*BinaryExpr)
	if be.Op != "~=" {
		t.Fatalf("op %q", be.Op)
	}
	if !HasCrowdFunc(s.(*Select).Where) {
		t.Error("~= must count as crowd func")
	}
}

// --- general SQL coverage ---

func TestParseJoin(t *testing.T) {
	s := mustParse(t, `SELECT t.title, n.name FROM Talk t JOIN NotableAttendee n ON n.title = t.title WHERE t.nb_attendees > 50`)
	sel := s.(*Select)
	if len(sel.From) != 2 {
		t.Fatalf("from: %d", len(sel.From))
	}
	if sel.From[1].Join != JoinInner || sel.From[1].On == nil {
		t.Error("join type/on")
	}
	if sel.From[0].Alias != "t" || sel.From[1].Alias != "n" {
		t.Error("aliases")
	}
}

func TestParseLeftJoin(t *testing.T) {
	s := mustParse(t, `SELECT * FROM a LEFT JOIN b ON a.x = b.x`)
	if s.(*Select).From[1].Join != JoinLeft {
		t.Error("left join")
	}
}

func TestParseCrossJoinComma(t *testing.T) {
	s := mustParse(t, `SELECT * FROM a, b WHERE a.x = b.x`)
	if s.(*Select).From[1].Join != JoinCross {
		t.Error("comma join must be cross")
	}
}

func TestParseGroupByHaving(t *testing.T) {
	s := mustParse(t, `SELECT title, COUNT(*) AS c FROM NotableAttendee GROUP BY title HAVING COUNT(*) > 2 ORDER BY c DESC`)
	sel := s.(*Select)
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("group/having")
	}
	if sel.Items[1].Alias != "c" {
		t.Error("alias")
	}
	if !sel.Items[1].Expr.(*FuncCall).Star {
		t.Error("COUNT(*)")
	}
}

func TestParseAggregates(t *testing.T) {
	s := mustParse(t, `SELECT MIN(x), MAX(x), AVG(x), SUM(x), COUNT(x) FROM t`)
	for _, it := range s.(*Select).Items {
		if !it.Expr.(*FuncCall).IsAggregate() {
			t.Errorf("%v should be aggregate", it.Expr)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	or := e.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top must be OR: %v", e)
	}
	and := or.R.(*BinaryExpr)
	if and.Op != "AND" {
		t.Errorf("AND binds tighter: %v", or.R)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	add := e.(*BinaryExpr)
	if add.Op != "+" || add.R.(*BinaryExpr).Op != "*" {
		t.Errorf("precedence: %v", e)
	}
}

func TestParseInBetweenLike(t *testing.T) {
	mustParse(t, `SELECT * FROM t WHERE x IN (1, 2, 3)`)
	mustParse(t, `SELECT * FROM t WHERE x NOT IN (1, 2)`)
	mustParse(t, `SELECT * FROM t WHERE x BETWEEN 1 AND 10`)
	mustParse(t, `SELECT * FROM t WHERE name LIKE 'Crowd%'`)
	mustParse(t, `SELECT * FROM t WHERE name NOT LIKE '%DB'`)
}

func TestParseNegativeNumbers(t *testing.T) {
	e, err := ParseExpr("-5")
	if err != nil {
		t.Fatal(err)
	}
	if e.(*Literal).Val.Int() != -5 {
		t.Errorf("got %v", e)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	s := mustParse(t, `UPDATE Talk SET nb_attendees = 100 WHERE title = 'CrowdDB'`)
	upd := s.(*Update)
	if upd.Set[0].Column != "nb_attendees" || upd.Where == nil {
		t.Error("update")
	}
	s = mustParse(t, `DELETE FROM Talk WHERE title = 'CrowdDB'`)
	if s.(*Delete).Where == nil {
		t.Error("delete where")
	}
}

func TestParseMultiRowInsert(t *testing.T) {
	s := mustParse(t, `INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')`)
	if len(s.(*Insert).Rows) != 3 {
		t.Error("rows")
	}
}

func TestParseExplainShow(t *testing.T) {
	s := mustParse(t, `EXPLAIN SELECT * FROM Talk`)
	if e, ok := s.(*Explain); !ok || e.Analyze {
		t.Error("explain")
	}
	s = mustParse(t, `EXPLAIN ANALYZE SELECT * FROM Talk`)
	e, ok := s.(*Explain)
	if !ok || !e.Analyze {
		t.Error("explain analyze")
	}
	// String() round-trips through the parser with the flag intact.
	s = mustParse(t, e.String())
	if e2, ok := s.(*Explain); !ok || !e2.Analyze {
		t.Errorf("EXPLAIN ANALYZE does not round-trip: %q", e.String())
	}
	s = mustParse(t, `SHOW TABLES`)
	if _, ok := s.(*ShowTables); !ok {
		t.Error("show tables")
	}
}

func TestParseCreateIndex(t *testing.T) {
	s := mustParse(t, `CREATE UNIQUE INDEX idx_title ON Talk (title)`)
	ci := s.(*CreateIndex)
	if !ci.Unique || ci.Table != "Talk" || ci.Columns[0] != "title" {
		t.Errorf("%+v", ci)
	}
}

func TestParseDropIfExists(t *testing.T) {
	s := mustParse(t, `DROP TABLE IF EXISTS Talk`)
	if !s.(*DropTable).IfExists {
		t.Error("if exists")
	}
}

func TestParseAnnotation(t *testing.T) {
	s := mustParse(t, `CREATE TABLE t (x STRING ANNOTATION 'the x value') ANNOTATION 'demo table'`)
	ct := s.(*CreateTable)
	if ct.Columns[0].Annotation != "the x value" || ct.Annotation != "demo table" {
		t.Errorf("%+v", ct)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"CREATE TABLE",
		"CREATE TABLE t (x BLOB)",
		"INSERT INTO t VALUES",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t LIMIT 'x'",
		"CROWDEQUAL(a)",
		"SELECT CROWDEQUAL(a) FROM t",
		"SELECT UNKNOWNFUNC(a) FROM t",
		"SELECT * FROM t WHERE x IS",
		"SELECT * FROM t WHERE x = = 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseAll(t *testing.T) {
	stmts, err := ParseAll(`CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1); SELECT * FROM t;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Errorf("want 3 statements, got %d", len(stmts))
	}
}

// Print→reparse fixpoint: String() of a parsed statement must parse to the
// same String(). This is the core structural property of the AST printers.
func TestPrintReparseFixpoint(t *testing.T) {
	sources := []string{
		`CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING, nb_attendees CROWD INTEGER)`,
		`CREATE CROWD TABLE NotableAttendee (name STRING PRIMARY KEY, title STRING, FOREIGN KEY (title) REF Talk(title))`,
		`SELECT title FROM Talk ORDER BY CROWDORDER(p, 'Which talk did you like better') LIMIT 10`,
		`SELECT abstract FROM paper WHERE title = 'CrowdDB'`,
		`SELECT t.title, n.name FROM Talk t JOIN NotableAttendee n ON n.title = t.title WHERE t.nb_attendees > 50`,
		`SELECT title, COUNT(*) AS c FROM NotableAttendee GROUP BY title HAVING COUNT(*) > 2 ORDER BY c DESC LIMIT 5 OFFSET 2`,
		`SELECT DISTINCT name FROM company WHERE name ~= 'UC Berkeley' OR name IN ('A', 'B')`,
		`SELECT * FROM t WHERE x BETWEEN 1 AND 10 AND y IS NOT CNULL`,
		`INSERT INTO t (a, b) VALUES (1, 'x'), (2, CNULL)`,
		`UPDATE Talk SET nb_attendees = 100, abstract = CNULL WHERE title = 'CrowdDB'`,
		`DELETE FROM Talk WHERE nb_attendees < 10`,
		`SELECT * FROM a LEFT JOIN b ON a.x = b.x, c`,
		`EXPLAIN SELECT * FROM Talk WHERE abstract IS CNULL`,
		`SELECT who FROM vis WHERE tid IN (SELECT id FROM talk WHERE att > 80)`,
		`SELECT who FROM vis WHERE tid NOT IN (SELECT tid FROM vis WHERE who = 'x')`,
	}
	for _, src := range sources {
		s1 := mustParse(t, src)
		printed := s1.String()
		s2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of %q failed: %v", printed, err)
			continue
		}
		if s2.String() != printed {
			t.Errorf("fixpoint violated:\n  src:   %s\n  once:  %s\n  twice: %s", src, printed, s2.String())
		}
	}
}

func TestWalkExprs(t *testing.T) {
	e, err := ParseExpr("CROWDEQUAL(LOWER(a), 'x') AND b BETWEEN 1 AND 2")
	if err != nil {
		t.Fatal(err)
	}
	var cols, funcs int
	WalkExprs(e, func(x Expr) {
		switch x.(type) {
		case *ColumnRef:
			cols++
		case *FuncCall:
			funcs++
		}
	})
	if cols != 2 || funcs != 2 {
		t.Errorf("cols=%d funcs=%d", cols, funcs)
	}
}

func TestSelectStarForms(t *testing.T) {
	s := mustParse(t, `SELECT *, t.* FROM t`)
	items := s.(*Select).Items
	if !items[0].Star || items[0].StarTable != "" {
		t.Error("bare star")
	}
	if !items[1].Star || items[1].StarTable != "t" {
		t.Error("t.*")
	}
}

func TestStringConcatOp(t *testing.T) {
	e, err := ParseExpr("a || b")
	if err != nil {
		t.Fatal(err)
	}
	if e.(*BinaryExpr).Op != "||" {
		t.Error("concat")
	}
}

func TestKeywordLowerCaseQuery(t *testing.T) {
	if _, err := Parse(strings.ToLower(`SELECT title FROM Talk WHERE abstract IS CNULL LIMIT 5`)); err != nil {
		t.Errorf("lower-case SQL must parse: %v", err)
	}
}
