package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"crowddb/internal/core"
)

// The line-oriented TCP wire protocol. One connection is one session:
//
//	S: # crowddb wire/1 session=s000001
//	C: SELECT title FROM Talk;            (statements end with ';',
//	C: \stats                              may span lines; \-commands
//	C: \quit                               are single lines)
//
// Responses:
//
//	OK <nrows>                             result header
//	# col1<TAB>col2                        column names (SELECT only)
//	val1<TAB>val2                          one line per row, \N = NULL
//	.                                      terminator
//	ERR <code> <message>                   single-line coded error
//
// The session closes when the connection does; its paid answers remain
// in the shared cache.

// wireConns tracks open connections for forced close on Shutdown.
type wireConns struct {
	mu    sync.Mutex
	conns map[net.Conn]bool
}

// ServeWire accepts wire-protocol connections until the listener closes
// (Shutdown closes it, then force-closes connections after the drain).
func (s *Server) ServeWire(ln net.Listener) error {
	s.trackListener(ln)
	wc := &wireConns{conns: make(map[net.Conn]bool)}
	s.trackPostDrain(closerFunc(func() error {
		wc.mu.Lock()
		defer wc.mu.Unlock()
		for c := range wc.conns {
			c.Close() //nolint:errcheck // teardown
		}
		return nil
	}))
	var retryDelay time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if !s.Healthy() {
				return nil // listener closed by Shutdown
			}
			// Transient failures (fd exhaustion under load, ECONNABORTED)
			// back off and retry instead of killing the listener — the
			// same policy as net/http's accept loop.
			if ne, ok := err.(net.Error); ok && ne.Temporary() { //nolint:staticcheck // the net/http accept-loop idiom
				if retryDelay == 0 {
					retryDelay = 5 * time.Millisecond
				} else if retryDelay *= 2; retryDelay > time.Second {
					retryDelay = time.Second
				}
				time.Sleep(retryDelay)
				continue
			}
			return err
		}
		retryDelay = 0
		wc.mu.Lock()
		wc.conns[conn] = true
		wc.mu.Unlock()
		go func() {
			defer func() {
				conn.Close() //nolint:errcheck // already torn down on error paths
				wc.mu.Lock()
				delete(wc.conns, conn)
				wc.mu.Unlock()
			}()
			s.serveWireConn(conn)
		}()
	}
}

type closerFunc func() error

func (f closerFunc) Close() error { return f() }

func (s *Server) serveWireConn(conn net.Conn) {
	sess, serr := s.CreateSession(0)
	w := bufio.NewWriter(conn)
	if serr != nil {
		writeWireError(w, serr)
		w.Flush() //nolint:errcheck // closing anyway
		return
	}
	defer s.CloseSession(sess.ID()) //nolint:errcheck // session may be gone on shutdown
	fmt.Fprintf(w, "# crowddb wire/1 session=%s\n", sess.ID())
	w.Flush() //nolint:errcheck // greeting best-effort

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var buf strings.Builder
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if s.wireCommand(w, sess, trimmed) {
				return
			}
			w.Flush() //nolint:errcheck // checked via next read
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			continue
		}
		sql := buf.String()
		buf.Reset()
		res, qerr := s.querySession(sess, sql)
		if qerr != nil {
			writeWireError(w, qerr)
		} else {
			writeWireResult(w, res)
		}
		if w.Flush() != nil {
			return
		}
	}
	// A read error (e.g. a line beyond the 1 MiB cap) still gets a coded
	// ERR line before the connection closes.
	if err := sc.Err(); err != nil {
		writeWireError(w, errf(CodeParse, "read: %v", err))
		w.Flush() //nolint:errcheck // closing anyway
	}
}

// wireCommand handles a \-command; reports whether the connection should
// close.
func (s *Server) wireCommand(w *bufio.Writer, sess *Session, cmd string) bool {
	switch strings.Fields(cmd)[0] {
	case "\\quit", "\\q":
		fmt.Fprintln(w, "OK 0")
		fmt.Fprintln(w, ".")
		w.Flush() //nolint:errcheck // closing anyway
		return true
	case "\\stats":
		info := sess.Info()
		cache := s.eng.CacheStats()
		fmt.Fprintln(w, "OK 1")
		fmt.Fprintf(w, "# session\tqueries\tbudget_left\tcomparisons\tcache_hits\tshared_flights\tcache_size\n")
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			info.ID, info.Queries, info.BudgetLeft,
			info.Stats.Comparisons, info.Stats.CacheHits, info.Stats.SharedFlights, cache.Size)
		fmt.Fprintln(w, ".")
	default:
		writeWireError(w, errf(CodeParse, "unknown command %s", cmd))
	}
	return false
}

func writeWireError(w *bufio.Writer, err *Error) {
	msg := strings.ReplaceAll(err.Message, "\n", " ")
	fmt.Fprintf(w, "ERR %s %s\n", err.Code, msg)
}

func writeWireResult(w *bufio.Writer, res *core.Result) {
	if res.Plan != "" {
		lines := strings.Split(strings.TrimRight(res.Plan, "\n"), "\n")
		fmt.Fprintf(w, "OK %d\n", len(lines))
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
		fmt.Fprintln(w, ".")
		return
	}
	if len(res.Columns) == 0 {
		fmt.Fprintf(w, "OK %d\n", res.Affected)
		fmt.Fprintln(w, ".")
		return
	}
	fmt.Fprintf(w, "OK %d\n", len(res.Rows))
	fmt.Fprintf(w, "# %s\n", strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			if v.IsUnknown() {
				cells[i] = `\N`
			} else {
				cells[i] = strings.ReplaceAll(v.String(), "\t", " ")
			}
		}
		fmt.Fprintln(w, strings.Join(cells, "\t"))
	}
	fmt.Fprintln(w, ".")
}
