package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The line-oriented TCP wire protocol. One connection is one session:
//
//	S: # crowddb wire/2 session=s000001
//	C: \proto 2                           (optional version negotiation)
//	C: SELECT title FROM Talk;            (statements end with ';',
//	C: \stats                              may span lines; \-commands
//	C: \quit                               are single lines)
//
// Responses:
//
//	OK <nrows>                             result header
//	# col1<TAB>col2                        column names (SELECT only)
//	val1<TAB>val2                          one line per row, \N = NULL
//	.                                      terminator
//	ERR <code> <message>                   single-line coded error
//
// The greeting advertises the highest protocol version the server
// speaks; `\proto <n>` pins the connection to version n (unknown
// versions get ERR unsupported_version). Version 2 adds the jobs shim:
//
//	\job <sql;>        submit asynchronously -> job id + state row
//	\poll <id>         job resource snapshot (state, rows, cents, error)
//	\cancel <id>       request cancellation, then a \poll-style row
//
// Synchronous statements execute as jobs internally on every version —
// the wire surface is a thin shim over the same lifecycle the HTTP v1
// API exposes. The session closes when the connection does; its paid
// answers remain in the shared cache, and its in-flight jobs are
// cancelled (session_closed).

// wireProtoMax is the highest protocol version served; wireProtoMin the
// lowest still accepted from \proto negotiation.
const (
	wireProtoMax = 2
	wireProtoMin = 1
)

// wireConns tracks open connections for forced close on Shutdown.
type wireConns struct {
	mu    sync.Mutex
	conns map[net.Conn]bool
}

// ServeWire accepts wire-protocol connections until the listener closes
// (Shutdown closes it, then force-closes connections after the drain).
func (s *Server) ServeWire(ln net.Listener) error {
	s.trackListener(ln)
	wc := &wireConns{conns: make(map[net.Conn]bool)}
	s.trackPostDrain(closerFunc(func() error {
		wc.mu.Lock()
		defer wc.mu.Unlock()
		for c := range wc.conns {
			c.Close() //nolint:errcheck // teardown
		}
		return nil
	}))
	var retryDelay time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if !s.Healthy() {
				return nil // listener closed by Shutdown
			}
			// Transient failures (fd exhaustion under load, ECONNABORTED)
			// back off and retry instead of killing the listener — the
			// same policy as net/http's accept loop.
			if ne, ok := err.(net.Error); ok && ne.Temporary() { //nolint:staticcheck // the net/http accept-loop idiom
				if retryDelay == 0 {
					retryDelay = 5 * time.Millisecond
				} else if retryDelay *= 2; retryDelay > time.Second {
					retryDelay = time.Second
				}
				time.Sleep(retryDelay)
				continue
			}
			return err
		}
		retryDelay = 0
		wc.mu.Lock()
		wc.conns[conn] = true
		wc.mu.Unlock()
		go func() {
			defer func() {
				conn.Close() //nolint:errcheck // already torn down on error paths
				wc.mu.Lock()
				delete(wc.conns, conn)
				wc.mu.Unlock()
			}()
			s.serveWireConn(conn)
		}()
	}
}

type closerFunc func() error

func (f closerFunc) Close() error { return f() }

// wireConnState carries one connection's negotiated protocol state.
type wireConnState struct {
	sess  *Session
	proto int
}

func (s *Server) serveWireConn(conn net.Conn) {
	sess, serr := s.CreateSession(0)
	w := bufio.NewWriter(conn)
	if serr != nil {
		writeWireError(w, serr)
		w.Flush() //nolint:errcheck // closing anyway
		return
	}
	defer s.CloseSession(sess.ID()) //nolint:errcheck // session may be gone on shutdown
	fmt.Fprintf(w, "# crowddb wire/%d session=%s\n", wireProtoMax, sess.ID())
	w.Flush() //nolint:errcheck // greeting best-effort

	st := &wireConnState{sess: sess, proto: wireProtoMax}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var buf strings.Builder
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if s.wireCommand(w, st, trimmed) {
				return
			}
			w.Flush() //nolint:errcheck // checked via next read
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			continue
		}
		sql := buf.String()
		buf.Reset()
		s.wireExec(w, sess, sql)
		if w.Flush() != nil {
			return
		}
	}
	// A read error (e.g. a line beyond the 1 MiB cap) still gets a coded
	// ERR line before the connection closes.
	if err := sc.Err(); err != nil {
		writeWireError(w, errf(CodeParse, "read: %v", err))
		w.Flush() //nolint:errcheck // closing anyway
	}
}

// wireExec runs one synchronous statement as a job (the wire shim) and
// renders the result in the v1-compatible line format.
func (s *Server) wireExec(w *bufio.Writer, sess *Session, sql string) {
	job, serr := s.startJobForSession(sess, sess.ID(), sql)
	if serr != nil {
		writeWireError(w, serr)
		return
	}
	state, _ := job.waitTerminal(context.Background())
	if state != JobDone {
		writeWireError(w, job.terminalError())
		return
	}
	writeWireJobResult(w, job)
}

// wireCommand handles a \-command; reports whether the connection should
// close.
func (s *Server) wireCommand(w *bufio.Writer, st *wireConnState, cmd string) bool {
	sess := st.sess
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\quit", "\\q":
		fmt.Fprintln(w, "OK 0")
		fmt.Fprintln(w, ".")
		w.Flush() //nolint:errcheck // closing anyway
		return true
	case "\\proto":
		// Version negotiation: pin the connection to a protocol the server
		// speaks; unknown versions get the coded refusal the jobs shim
		// clients key off.
		if len(fields) != 2 {
			writeWireError(w, errf(CodeParse, "usage: \\proto <version>"))
			return false
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil || v < wireProtoMin || v > wireProtoMax {
			writeWireError(w, errf(CodeUnsupportedVersion,
				"protocol wire/%s not supported (serving wire/%d..wire/%d)",
				fields[1], wireProtoMin, wireProtoMax))
			return false
		}
		st.proto = v
		fmt.Fprintln(w, "OK 0")
		fmt.Fprintf(w, "# crowddb wire/%d session=%s\n", v, sess.ID())
		fmt.Fprintln(w, ".")
	case "\\stats":
		info := sess.Info()
		cache := s.eng.CacheStats()
		fmt.Fprintln(w, "OK 1")
		fmt.Fprintf(w, "# session\tqueries\tbudget_left\tcomparisons\tcache_hits\tshared_flights\tcache_size\n")
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			info.ID, info.Queries, info.BudgetLeft,
			info.Stats.Comparisons, info.Stats.CacheHits, info.Stats.SharedFlights, cache.Size)
		fmt.Fprintln(w, ".")
	case "\\job":
		if st.proto < 2 {
			writeWireError(w, errf(CodeUnsupportedVersion, "\\job requires wire/2 (connection pinned to wire/%d)", st.proto))
			return false
		}
		sql := strings.TrimSpace(strings.TrimPrefix(cmd, fields[0]))
		if sql == "" {
			writeWireError(w, errf(CodeParse, "usage: \\job <sql;>"))
			return false
		}
		job, serr := s.startJobForSession(sess, sess.ID(), sql)
		if serr != nil {
			writeWireError(w, serr)
			return false
		}
		writeWireJobInfo(w, job.Info())
	case "\\poll":
		if st.proto < 2 {
			writeWireError(w, errf(CodeUnsupportedVersion, "\\poll requires wire/2 (connection pinned to wire/%d)", st.proto))
			return false
		}
		if len(fields) != 2 {
			writeWireError(w, errf(CodeParse, "usage: \\poll <job-id>"))
			return false
		}
		job, serr := s.Job(fields[1])
		if serr != nil {
			writeWireError(w, serr)
			return false
		}
		writeWireJobInfo(w, job.Info())
	case "\\cancel":
		if st.proto < 2 {
			writeWireError(w, errf(CodeUnsupportedVersion, "\\cancel requires wire/2 (connection pinned to wire/%d)", st.proto))
			return false
		}
		if len(fields) != 2 {
			writeWireError(w, errf(CodeParse, "usage: \\cancel <job-id>"))
			return false
		}
		job, serr := s.CancelJob(fields[1])
		if serr != nil {
			writeWireError(w, serr)
			return false
		}
		writeWireJobInfo(w, job.Info())
	default:
		writeWireError(w, errf(CodeParse, "unknown command %s", cmd))
	}
	return false
}

// writeWireJobInfo renders a job resource as one tabular row.
func writeWireJobInfo(w *bufio.Writer, info JobInfo) {
	fmt.Fprintln(w, "OK 1")
	fmt.Fprintf(w, "# job\tstate\trows\tstatements\tspent_cents\terror\n")
	errCell := `\N`
	if info.Error != nil {
		errCell = string(info.Error.Code)
	}
	fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.1f\t%s\n",
		info.ID, info.State, info.RowsEmitted, info.StatementsDone, info.SpentCents, errCell)
	fmt.Fprintln(w, ".")
}

func writeWireError(w *bufio.Writer, err *Error) {
	msg := strings.ReplaceAll(err.Message, "\n", " ")
	fmt.Fprintf(w, "ERR %s %s\n", err.Code, msg)
}

// writeWireJobResult renders a finished job's last statement in the
// line format (byte-compatible with the pre-jobs wire responses).
func writeWireJobResult(w *bufio.Writer, job *Job) {
	cols, rows, affected, planText, _, _, _, _ := job.lastResult()
	if planText != "" {
		lines := strings.Split(strings.TrimRight(planText, "\n"), "\n")
		fmt.Fprintf(w, "OK %d\n", len(lines))
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
		fmt.Fprintln(w, ".")
		return
	}
	if len(cols) == 0 {
		fmt.Fprintf(w, "OK %d\n", affected)
		fmt.Fprintln(w, ".")
		return
	}
	fmt.Fprintf(w, "OK %d\n", len(rows))
	fmt.Fprintf(w, "# %s\n", strings.Join(cols, "\t"))
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, v := range row {
			if v == nil {
				cells[i] = `\N`
			} else {
				cells[i] = strings.ReplaceAll(*v, "\t", " ")
			}
		}
		fmt.Fprintln(w, strings.Join(cells, "\t"))
	}
	fmt.Fprintln(w, ".")
}
