package server

// Budget-aware admission control (Config.AdmissionHeadroom): before a
// job is registered — and therefore before a single HIT could be
// posted — the optimizer's cost forecast for the whole script is
// checked against the session's remaining comparison budget. A script
// predicted to overrun is rejected with the coded budget_exhausted
// error having spent exactly zero cents. The headroom knob re-admits
// conservatively overpredicted queries: predicted ≤ remaining × headroom
// passes, so headroom 1.0 is exact and larger values trust the forecast
// less.

import (
	"math"

	"crowddb/internal/parser"
)

// AdmissionStats reports the budget-aware admission controller's
// decisions and its forecast accuracy (predicted vs actual cents over
// admitted jobs that ran to completion) — the /stats cost_model view of
// how well admission predictions track reality.
type AdmissionStats struct {
	Admitted       int64 `json:"admitted"`
	RejectedBudget int64 `json:"rejected_budget"`
	// ForecastJobs counts completed jobs admitted with a finite forecast;
	// PredictedCents/ActualCents accumulate their admission-time forecast
	// and the spend they actually settled.
	ForecastJobs   int64   `json:"forecast_jobs"`
	PredictedCents float64 `json:"predicted_cents"`
	ActualCents    float64 `json:"actual_cents"`
}

// admitBudget runs the admission forecast for a script. It returns the
// predicted spend in cents (-1 = no finite forecast was available, or
// the check is disabled) and the coded rejection, if any.
func (s *Server) admitBudget(sess *Session, stmts []parser.Statement) (float64, *Error) {
	if s.cfg.AdmissionHeadroom <= 0 {
		return -1, nil
	}
	left := sess.budgetLeft()
	if left < 0 {
		s.countAdmission(true)
		return -1, nil // unlimited budget: trivially admitted
	}
	per := s.eng.CostPerComparisonCents()
	if per <= 0 {
		s.countAdmission(true)
		return -1, nil // no crowd platform: nothing to meter
	}
	var cents float64
	finite := false
	for _, stmt := range stmts {
		c, ok := s.eng.Forecast(stmt)
		if !ok || c.IsUnbounded() {
			continue // unknown or diverging forecast: never reject on a guess
		}
		cents += c.Cents
		finite = true
	}
	if !finite {
		s.countAdmission(true)
		return -1, nil
	}
	predicted := int(math.Ceil(cents / per))
	if float64(predicted) > float64(left)*s.cfg.AdmissionHeadroom {
		s.countAdmission(false)
		return cents, errf(CodeBudgetExhausted,
			"admission: forecast %d crowd comparisons (%.1f cents) exceeds the remaining budget %d x headroom %.2f; nothing was posted",
			predicted, cents, left, s.cfg.AdmissionHeadroom)
	}
	s.countAdmission(true)
	return cents, nil
}

func (s *Server) countAdmission(admitted bool) {
	s.mu.Lock()
	if admitted {
		s.adm.Admitted++
	} else {
		s.adm.RejectedBudget++
	}
	s.mu.Unlock()
}

// noteAdmissionOutcome folds a retired job's actual spend into the
// admission-accuracy aggregate when the job was admitted with a finite
// forecast and ran to completion.
func (s *Server) noteAdmissionOutcome(j *Job) {
	j.mu.Lock()
	predicted, actual, state := j.admPredicted, j.settledCents, j.state
	j.mu.Unlock()
	if predicted < 0 || state != JobDone {
		return
	}
	s.mu.Lock()
	s.adm.ForecastJobs++
	s.adm.PredictedCents += predicted
	s.adm.ActualCents += actual
	s.mu.Unlock()
}

// costModelReport joins the engine's cost-model accuracy with the
// admission controller's.
func (s *Server) costModelReport() CostModelReport {
	s.mu.Lock()
	adm := s.adm
	s.mu.Unlock()
	return CostModelReport{CostModelStats: s.eng.CostModel(), Admission: adm}
}
