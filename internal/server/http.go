package server

import (
	"encoding/json"
	"net/http"
	"strings"

	"crowddb/internal/core"
	"crowddb/internal/exec"
)

// HTTP/JSON API.
//
//	POST /query            {"sql": "...", "session": "s000001"?, }
//	POST /session          {"budget": 25}?          -> session info
//	DELETE /session/{id}                            -> close session
//	GET  /stats                                     -> StatsReport
//	GET  /healthz                                   -> liveness (503 when draining)
//
// Every error body is {"error": {"code": "...", "message": "..."}} with
// the code drawn from the Code constants.

// queryRequest is the POST /query body.
type queryRequest struct {
	SQL string `json:"sql"`
	// Session names a registered session; empty runs an anonymous
	// one-shot session with the default budget.
	Session string `json:"session"`
}

// queryResponse is the POST /query result. Values are rendered as
// strings; SQL NULL and CNULL become JSON null.
type queryResponse struct {
	Session  string      `json:"session,omitempty"`
	Columns  []string    `json:"columns,omitempty"`
	Rows     [][]*string `json:"rows,omitempty"`
	Affected int         `json:"affected"`
	Plan     string      `json:"plan,omitempty"`
	Warnings []string    `json:"warnings,omitempty"`
	Stats    exec.Stats  `json:"stats"`
	// Cost-model forecast vs measured spend for the statement.
	PredictedCents   float64 `json:"predicted_cents,omitempty"`
	PredictedSeconds float64 `json:"predicted_seconds,omitempty"`
	ActualCents      float64 `json:"actual_cents,omitempty"`
}

type sessionRequest struct {
	// Budget caps the session's paid crowd comparisons
	// (0 = server default, negative = unlimited).
	Budget int `json:"budget"`
}

type errorResponse struct {
	Error *Error `json:"error"`
}

// HTTPHandler returns the service's HTTP API.
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/session", s.handleSession)
	mux.HandleFunc("/session/", s.handleSessionID)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) //nolint:errcheck // client gone is not our error
}

func writeError(w http.ResponseWriter, err *Error) {
	writeJSON(w, err.HTTPStatus(), errorResponse{Error: err})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, errf(CodeParse, "use POST /query"))
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, errf(CodeParse, "bad request body: %v", err))
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, errf(CodeParse, "empty sql"))
		return
	}
	res, qerr := s.Query(req.Session, req.SQL)
	if qerr != nil {
		writeError(w, qerr)
		return
	}
	writeJSON(w, http.StatusOK, resultJSON(res, req.Session))
}

func resultJSON(res *core.Result, session string) queryResponse {
	out := queryResponse{
		Session:  session,
		Columns:  res.Columns,
		Affected: res.Affected,
		Plan:     res.Plan,
		Warnings: res.Warnings,
		Stats:    res.Stats,
	}
	if !res.Predicted.IsUnbounded() {
		out.PredictedCents = res.Predicted.Cents
		out.PredictedSeconds = res.Predicted.Seconds
	}
	out.ActualCents = res.ActualCents
	for _, row := range res.Rows {
		cells := make([]*string, len(row))
		for i, v := range row {
			if v.IsUnknown() {
				continue // JSON null
			}
			rendered := v.String()
			cells[i] = &rendered
		}
		out.Rows = append(out.Rows, cells)
	}
	return out
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, errf(CodeParse, "use POST /session"))
		return
	}
	var req sessionRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, errf(CodeParse, "bad request body: %v", err))
			return
		}
	}
	sess, serr := s.CreateSession(req.Budget)
	if serr != nil {
		writeError(w, serr)
		return
	}
	writeJSON(w, http.StatusOK, sess.Info())
}

func (s *Server) handleSessionID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/session/")
	switch r.Method {
	case http.MethodDelete:
		if err := s.CloseSession(id); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"closed": id})
	case http.MethodGet:
		sess, err := s.Session(id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, sess.Info())
	default:
		w.Header().Set("Allow", "GET, DELETE")
		writeError(w, errf(CodeParse, "use GET or DELETE /session/{id}"))
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.Healthy() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
