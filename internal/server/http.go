package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"crowddb/internal/exec"
)

// HTTP/JSON API.
//
// v1 — the asynchronous jobs surface (docs/openapi.yaml is generated
// from this contract):
//
//	POST   /v1/queries          {"sql": "...", "session": "s000001"?}
//	                            -> 202 job resource (id, state, ...)
//	GET    /v1/queries          -> retained job resources, newest first
//	GET    /v1/queries/{id}     -> job resource (poll)
//	GET    /v1/queries/{id}/rows[?from=N]
//	                            -> partial-result stream: NDJSON rows
//	                               (one JSON array per line, then a
//	                               {"state": ...} trailer), or SSE with
//	                               Accept: text/event-stream
//	GET    /v1/queries/{id}/trace
//	                            -> the job's span tree (trace JSON)
//	DELETE /v1/queries/{id}     -> request cancellation (idempotent)
//	GET    /metrics             -> Prometheus text exposition (0.0.4)
//
// Legacy — kept byte-compatible, now thin shims over jobs (see the
// README deprecation policy):
//
//	POST /query            {"sql": "...", "session": "s000001"?}
//	POST /session          {"budget": 25}?          -> session info
//	GET/DELETE /session/{id}                        -> info / close
//	GET  /stats                                     -> StatsReport
//	GET  /healthz                                   -> liveness JSON (503 when draining)
//
// Every error body is {"error": {"code": "...", "message": "..."}} with
// the code drawn from the Code constants.

// queryRequest is the POST /query body.
type queryRequest struct {
	SQL string `json:"sql"`
	// Session names a registered session; empty runs an anonymous
	// one-shot session with the default budget.
	Session string `json:"session"`
}

// queryResponse is the POST /query result. Values are rendered as
// strings; SQL NULL and CNULL become JSON null.
type queryResponse struct {
	Session  string      `json:"session,omitempty"`
	Columns  []string    `json:"columns,omitempty"`
	Rows     [][]*string `json:"rows,omitempty"`
	Affected int         `json:"affected"`
	Plan     string      `json:"plan,omitempty"`
	Warnings []string    `json:"warnings,omitempty"`
	Stats    exec.Stats  `json:"stats"`
	// Cost-model forecast vs measured spend for the statement.
	PredictedCents   float64 `json:"predicted_cents,omitempty"`
	PredictedSeconds float64 `json:"predicted_seconds,omitempty"`
	ActualCents      float64 `json:"actual_cents,omitempty"`
}

type sessionRequest struct {
	// Budget caps the session's paid crowd comparisons
	// (0 = server default, negative = unlimited).
	Budget int `json:"budget"`
}

type errorResponse struct {
	Error *Error `json:"error"`
}

// HTTPHandler returns the service's HTTP API.
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/queries", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/queries", s.handleJobList)
	mux.HandleFunc("GET /v1/queries/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/queries/{id}/rows", s.handleJobRows)
	mux.HandleFunc("GET /v1/queries/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("DELETE /v1/queries/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/session", s.handleSession)
	mux.HandleFunc("/session/", s.handleSessionID)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// handleJobSubmit creates a query job: POST /v1/queries.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, errf(CodeParse, "bad request body: %v", err))
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, errf(CodeParse, "empty sql"))
		return
	}
	job, serr := s.StartJob(req.Session, req.SQL)
	if serr != nil {
		writeError(w, serr)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Info())
}

// handleJobList reports every retained job: GET /v1/queries.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

// handleJobGet polls one job: GET /v1/queries/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, serr := s.Job(r.PathValue("id"))
	if serr != nil {
		writeError(w, serr)
		return
	}
	writeJSON(w, http.StatusOK, job.Info())
}

// handleJobCancel requests cancellation: DELETE /v1/queries/{id}. The
// response is the job's current snapshot — poll for the terminal state.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, serr := s.CancelJob(r.PathValue("id"))
	if serr != nil {
		writeError(w, serr)
		return
	}
	writeJSON(w, http.StatusOK, job.Info())
}

// handleJobRows streams a job's result rows: GET /v1/queries/{id}/rows.
// Rows stream as they are produced; the connection stays open until the
// job reaches a terminal state (or the client goes away). With
// Accept: text/event-stream the response is SSE ("row" events followed
// by one "end" event); otherwise NDJSON — one JSON array per row, then a
// {"state": ..., "error": ...} trailer object.
func (s *Server) handleJobRows(w http.ResponseWriter, r *http.Request) {
	job, serr := s.Job(r.PathValue("id"))
	if serr != nil {
		writeError(w, serr)
		return
	}
	from := 0
	if f := r.URL.Query().Get("from"); f != "" {
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 {
			writeError(w, errf(CodeParse, "bad from offset %q", f))
			return
		}
		from = n
	}
	flusher, _ := w.(http.Flusher)
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)

	enc := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			return []byte("null")
		}
		return b
	}
	next := from
	for {
		batch, state, notify := job.rowsFrom(next)
		for _, row := range batch {
			if sse {
				fmt.Fprintf(w, "event: row\ndata: %s\n\n", enc(row))
			} else {
				w.Write(enc(row))     //nolint:errcheck // client gone surfaces on flush
				w.Write([]byte("\n")) //nolint:errcheck
			}
			next++
		}
		if len(batch) > 0 && flusher != nil {
			flusher.Flush()
		}
		if state.Terminal() {
			trailer := map[string]any{"state": state}
			if err := job.Err(); err != nil {
				trailer["error"] = err
			}
			if sse {
				fmt.Fprintf(w, "event: end\ndata: %s\n\n", enc(trailer))
			} else {
				w.Write(enc(trailer)) //nolint:errcheck
				w.Write([]byte("\n")) //nolint:errcheck
			}
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) //nolint:errcheck // client gone is not our error
}

func writeError(w http.ResponseWriter, err *Error) {
	writeJSON(w, err.HTTPStatus(), errorResponse{Error: err})
}

// handleQuery is the legacy synchronous endpoint, kept byte-compatible
// as a thin shim over jobs: it submits a job, waits for the terminal
// state, and renders the final statement's result in the v0 shape.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, errf(CodeParse, "use POST /query"))
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, errf(CodeParse, "bad request body: %v", err))
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, errf(CodeParse, "empty sql"))
		return
	}
	job, serr := s.StartJob(req.Session, req.SQL)
	if serr != nil {
		writeError(w, serr)
		return
	}
	state, err := job.waitTerminal(r.Context())
	if err != nil {
		return // client gone; the job keeps running (v0 parity)
	}
	if state != JobDone {
		writeError(w, job.terminalError())
		return
	}
	writeJSON(w, http.StatusOK, legacyResponse(job, req.Session))
}

// legacyResponse renders a finished job's last statement in the v0
// POST /query shape — byte-compatible with the pre-jobs server.
func legacyResponse(job *Job, session string) queryResponse {
	cols, rows, affected, planText, warnings, st, predicted, actual := job.lastResult()
	out := queryResponse{
		Session:  session,
		Columns:  cols,
		Affected: affected,
		Plan:     planText,
		Warnings: warnings,
		Stats:    st,
	}
	if !predicted.IsUnbounded() {
		out.PredictedCents = predicted.Cents
		out.PredictedSeconds = predicted.Seconds
	}
	out.ActualCents = actual
	if len(rows) > 0 {
		out.Rows = rows
	}
	return out
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, errf(CodeParse, "use POST /session"))
		return
	}
	var req sessionRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, errf(CodeParse, "bad request body: %v", err))
			return
		}
	}
	sess, serr := s.CreateSession(req.Budget)
	if serr != nil {
		writeError(w, serr)
		return
	}
	writeJSON(w, http.StatusOK, sess.Info())
}

func (s *Server) handleSessionID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/session/")
	switch r.Method {
	case http.MethodDelete:
		if err := s.CloseSession(id); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"closed": id})
	case http.MethodGet:
		sess, err := s.Session(id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, sess.Info())
	default:
		w.Header().Set("Allow", "GET, DELETE")
		writeError(w, errf(CodeParse, "use GET or DELETE /session/{id}"))
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
