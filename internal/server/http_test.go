package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck // test buffer
	return resp, buf.Bytes()
}

func TestHTTPQuerySessionStatsHealthz(t *testing.T) {
	eng := pairEngine(t, 23, 4)
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	// Create a session with a budget.
	resp, body := postJSON(t, ts.URL+"/session", map[string]int{"budget": 50})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /session: %d %s", resp.StatusCode, body)
	}
	var info SessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.BudgetLeft != 50 {
		t.Fatalf("session info = %+v", info)
	}

	// A crowd query through the session.
	resp, body = postJSON(t, ts.URL+"/query",
		map[string]string{"sql": "SELECT id FROM Pair WHERE a ~= b", "session": info.ID})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: %d %s", resp.StatusCode, body)
	}
	var qr struct {
		Session string      `json:"session"`
		Columns []string    `json:"columns"`
		Rows    [][]*string `json:"rows"`
		Stats   struct {
			Comparisons int `json:"Comparisons"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Session != info.ID || len(qr.Columns) != 1 || qr.Stats.Comparisons != 4 {
		t.Fatalf("query response: %s", body)
	}

	// Anonymous query (no session field), NULL rendering.
	postJSON(t, ts.URL+"/query", map[string]string{"sql": "INSERT INTO Pair (id) VALUES (99)"})
	resp, body = postJSON(t, ts.URL+"/query", map[string]string{"sql": "SELECT a, id FROM Pair WHERE id = 99"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("anonymous query: %d %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`[null,"99"]`)) {
		t.Errorf("NULL not rendered as JSON null: %s", body)
	}

	// Parse errors are coded 400s.
	resp, body = postJSON(t, ts.URL+"/query", map[string]string{"sql": "SELEC nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error status: %d", resp.StatusCode)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == nil || er.Error.Code != CodeParse {
		t.Fatalf("parse error body: %s", body)
	}

	// Budget exhaustion is a coded 429.
	_, tinyBody := postJSON(t, ts.URL+"/session", map[string]int{"budget": 1})
	var tinyInfo SessionInfo
	json.Unmarshal(tinyBody, &tinyInfo) //nolint:errcheck // checked below
	postJSON(t, ts.URL+"/query", map[string]string{
		"sql": "SELECT a FROM Pair ORDER BY CROWDORDER(a, 'nicer name?')", "session": tinyInfo.ID})
	resp, body = postJSON(t, ts.URL+"/query", map[string]string{
		"sql": "SELECT a FROM Pair ORDER BY CROWDORDER(a, 'nicer name, again?')", "session": tinyInfo.ID})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("budget exhaustion status: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &er); err != nil || er.Error == nil || er.Error.Code != CodeBudgetExhausted {
		t.Fatalf("budget exhaustion body: %s", body)
	}

	// /stats reflects the shared cache and sessions.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var report StatsReport
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if report.Server.Queries < 2 || report.Cache.Size == 0 || report.Tasks == nil {
		t.Errorf("stats report: %+v", report)
	}
	if len(report.Sessions) != 2 {
		t.Errorf("sessions in report: %d, want 2", len(report.Sessions))
	}

	// Healthz flips on shutdown.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()

	// Closing a session frees it.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+info.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE session: %v %v", resp, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/session/" + info.ID)
	if err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET closed session: %v %v", resp, err)
	}
	resp.Body.Close()
}

func TestWireProtocol(t *testing.T) {
	eng := pairEngine(t, 29, 3)
	srv := New(eng, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.ServeWire(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	greeting, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(greeting, "# crowddb wire/2 session=") {
		t.Fatalf("greeting = %q, %v", greeting, err)
	}

	send := func(line string) {
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatal(err)
		}
	}
	readBlock := func() []string {
		var lines []string
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("read: %v (so far %v)", err, lines)
			}
			line = strings.TrimRight(line, "\n")
			if line == "." {
				return lines
			}
			lines = append(lines, line)
			if strings.HasPrefix(line, "ERR ") {
				return lines
			}
		}
	}

	// A crowd query: OK header, column line, 3 rows.
	send("SELECT id FROM Pair WHERE a ~= b;")
	block := readBlock()
	if block[0] != "OK 3" || block[1] != "# id" || len(block) != 5 {
		t.Fatalf("wire result: %v", block)
	}

	// Multi-line statements buffer until ';'.
	send("SELECT id")
	send("FROM Pair;")
	if block = readBlock(); block[0] != "OK 3" {
		t.Fatalf("multi-line result: %v", block)
	}

	// Coded errors come back as single ERR lines.
	send("SELEC nope;")
	if block = readBlock(); !strings.HasPrefix(block[0], "ERR parse_error ") {
		t.Fatalf("wire error: %v", block)
	}

	// \stats reports the session and shared cache.
	send("\\stats")
	block = readBlock()
	if block[0] != "OK 1" || !strings.Contains(block[1], "shared_flights") {
		t.Fatalf("wire stats: %v", block)
	}

	// \quit closes cleanly and the session is released.
	send("\\quit")
	if block = readBlock(); block[0] != "OK 0" {
		t.Fatalf("quit: %v", block)
	}
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("connection still open after \\quit")
	}

	ln.Close()
	if err := <-serveDone; err == nil {
		t.Log("serve loop ended")
	}
	if n := srv.Stats().Server.ActiveSessions; n != 0 {
		t.Errorf("%d sessions still registered after disconnect", n)
	}
}

// TestStatsIncludesCostModel: /stats surfaces the optimizer's aggregate
// predicted-vs-actual error, and query responses carry the per-statement
// forecast.
func TestStatsIncludesCostModel(t *testing.T) {
	eng := pairEngine(t, 29, 3)
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/query", map[string]string{"sql": "SELECT id FROM Pair WHERE a ~= b"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: %d %s", resp.StatusCode, body)
	}
	var qr struct {
		PredictedCents float64 `json:"predicted_cents"`
		ActualCents    float64 `json:"actual_cents"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.PredictedCents <= 0 || qr.ActualCents <= 0 {
		t.Errorf("crowd query must report forecast and spend: %+v", qr)
	}

	resp, body = postJSON(t, ts.URL+"/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats: %d", resp.StatusCode)
	}
	var rep StatsReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.CostModel.Statements == 0 || rep.CostModel.ActualCents <= 0 {
		t.Errorf("cost model must be populated after a crowd query: %+v", rep.CostModel)
	}
	if !strings.Contains(string(body), `"cost_model"`) {
		t.Error("/stats must include the cost_model section")
	}
}
