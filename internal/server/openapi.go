package server

// The OpenAPI contract for the HTTP API. The YAML document is assembled
// here — next to the handlers it describes — so the spec, the routes,
// and the error codes cannot drift silently: openapi_test.go fails when
// a mux route, job state, or error code is missing from the document,
// and cmd/crowdopenapi -check fails CI when the committed
// docs/openapi.yaml is stale. (The container has no third-party YAML
// loader; the load check validates structure and coverage instead of a
// full kin-openapi parse.)

import "fmt"

// openAPIVersion is the spec's document version; bump on breaking
// contract changes.
const openAPIVersion = "1.2.0"

// httpRoutes lists every mux pattern HTTPHandler registers, in
// documentation order. The OpenAPI coverage test walks it.
func httpRoutes() []string {
	return []string{
		"POST /v1/queries",
		"GET /v1/queries",
		"GET /v1/queries/{id}",
		"GET /v1/queries/{id}/rows",
		"GET /v1/queries/{id}/trace",
		"DELETE /v1/queries/{id}",
		"GET /metrics",
		"POST /query",
		"POST /session",
		"GET /session/{id}",
		"DELETE /session/{id}",
		"GET /stats",
		"GET /healthz",
	}
}

// errorCodes lists every stable coded error the API can return.
func errorCodes() []Code {
	return []Code{
		CodeParse, CodeBudgetExhausted, CodeBusy, CodeShuttingDown,
		CodeUnknownSession, CodeTooManySessions, CodeInternal,
		CodeUnknownJob, CodeCancelled, CodeSessionClosed,
		CodeInterrupted, CodeUnsupportedVersion,
	}
}

// jobStates lists the job lifecycle states the spec enumerates.
func jobStates() []JobState {
	return []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCancelled, JobInterrupted}
}

// OpenAPISpec renders the OpenAPI 3.0 document for the HTTP API as YAML.
func OpenAPISpec() []byte {
	states := ""
	for _, s := range jobStates() {
		states += fmt.Sprintf("          - %s\n", s)
	}
	codes := ""
	for _, c := range errorCodes() {
		codes += fmt.Sprintf("              - %s\n", c)
	}
	return []byte(fmt.Sprintf(`openapi: 3.0.3
info:
  title: CrowdDB Jobs API
  description: >-
    Asynchronous, streaming, cancellable query lifecycle for crowddbd.
    Queries run as jobs: submit, poll or stream partial rows while the
    crowd works, cancel, and settle the session budget for work already
    paid. Legacy endpoints (POST /query, the session resource) are thin
    shims over jobs and remain byte-compatible; see the README
    deprecation policy.
  version: %q
paths:
  /v1/queries:
    post:
      summary: Submit a CrowdSQL script as an asynchronous query job
      description: >-
        With budget-aware admission enabled (crowddbd -admission-headroom),
        a script whose optimizer forecast exceeds the session's remaining
        crowd budget times the headroom factor is rejected synchronously
        with the coded budget_exhausted error — before a single HIT group
        is posted, having spent exactly zero cents.
      requestBody:
        required: true
        content:
          application/json:
            schema:
              $ref: '#/components/schemas/QueryRequest'
      responses:
        '202':
          description: Job accepted (state queued or running)
          content:
            application/json:
              schema:
                $ref: '#/components/schemas/Job'
        default:
          $ref: '#/components/responses/Error'
    get:
      summary: List retained jobs, newest first
      responses:
        '200':
          description: Retained job resources
          content:
            application/json:
              schema:
                type: object
                properties:
                  jobs:
                    type: array
                    items:
                      $ref: '#/components/schemas/Job'
  /v1/queries/{id}:
    parameters:
      - $ref: '#/components/parameters/JobID'
    get:
      summary: Poll one job resource
      responses:
        '200':
          description: Job resource
          content:
            application/json:
              schema:
                $ref: '#/components/schemas/Job'
        default:
          $ref: '#/components/responses/Error'
    delete:
      summary: Request cancellation (idempotent)
      description: >-
        The running statement stops posting new HIT groups within one
        scheduler tick; queued submissions are withdrawn, singleflight
        claims released, and the session budget settles for work already
        paid. Poll for the terminal state (cancelled, or failed with
        session_closed when the session was closed instead).
      responses:
        '200':
          description: Current job snapshot (poll for the terminal state)
          content:
            application/json:
              schema:
                $ref: '#/components/schemas/Job'
        default:
          $ref: '#/components/responses/Error'
  /v1/queries/{id}/rows:
    parameters:
      - $ref: '#/components/parameters/JobID'
      - name: from
        in: query
        required: false
        schema:
          type: integer
          minimum: 0
        description: Row index to resume the stream from
    get:
      summary: Stream the job's result rows as they are produced
      description: >-
        Rows stream while the job runs; the response ends when the job
        reaches a terminal state. Default framing is NDJSON (one JSON
        array of nullable strings per row, then one trailer object with
        the terminal state and error); with "Accept: text/event-stream"
        the same data arrives as SSE "row" events followed by one "end"
        event. With durable jobs enabled (crowddbd -data), row offsets
        are stable across server restarts: a row is journaled before it
        is observable, so a client that reconnects with ?from=N after a
        crash — even to a job that resumed execution on the restarted
        server — sees neither duplicate nor missing rows.
      responses:
        '200':
          description: NDJSON or SSE partial-result stream
          content:
            application/x-ndjson:
              schema:
                type: string
            text/event-stream:
              schema:
                type: string
        '404':
          description: >-
            Unknown or evicted job: ids the server never issued and jobs
            already retired by the finished-job retention cap (MaxJobs)
            both return the coded unknown_job error. Resuming a stream
            with ?from=N after eviction is NOT silently empty — clients
            must treat this as "re-submit the query".
          content:
            application/json:
              schema:
                type: object
                properties:
                  error:
                    $ref: '#/components/schemas/Error'
        default:
          $ref: '#/components/responses/Error'
  /v1/queries/{id}/trace:
    parameters:
      - $ref: '#/components/parameters/JobID'
    get:
      summary: Fetch the job's trace span tree
      description: >-
        One span tree per job: parsing, then per statement the optimizer
        (with the chosen plan's cost snapshot), the pinned MVCC snapshot,
        every executor operator's rows and wall time, and each crowd HIT
        group's post-to-quorum lifecycle. Live jobs return the tree so
        far. Unknown and retention-evicted jobs — and known jobs whose
        trace was evicted from the tracer's ring or recorded with tracing
        disabled — return the coded unknown_job 404.
      responses:
        '200':
          description: Trace span tree
          content:
            application/json:
              schema:
                $ref: '#/components/schemas/Trace'
        '404':
          description: Unknown job, evicted job, or no retained trace
          content:
            application/json:
              schema:
                type: object
                properties:
                  error:
                    $ref: '#/components/schemas/Error'
        default:
          $ref: '#/components/responses/Error'
  /metrics:
    get:
      summary: Prometheus text exposition (format 0.0.4)
      description: >-
        Counters, gauges, and histograms for the whole stack: statements
        and crowd spend, comparison-cache hits and evictions, task-manager
        in-flight groups and round-trip latency, per-shard WAL fsync
        latency and batch size, MVCC retained versions and GC reclaims,
        and job/session service counters.
      responses:
        '200':
          description: Metric families
          content:
            text/plain:
              schema:
                type: string
  /query:
    post:
      summary: Legacy synchronous query (shim over jobs)
      deprecated: true
      requestBody:
        required: true
        content:
          application/json:
            schema:
              $ref: '#/components/schemas/QueryRequest'
      responses:
        '200':
          description: Final result of the script's last statement
          content:
            application/json:
              schema:
                $ref: '#/components/schemas/QueryResult'
        default:
          $ref: '#/components/responses/Error'
  /session:
    post:
      summary: Create a session with a crowd-comparison budget
      requestBody:
        required: false
        content:
          application/json:
            schema:
              type: object
              properties:
                budget:
                  type: integer
                  description: >-
                    0 = server default, negative = unlimited
      responses:
        '200':
          description: Session resource
          content:
            application/json:
              schema:
                $ref: '#/components/schemas/Session'
        default:
          $ref: '#/components/responses/Error'
  /session/{id}:
    parameters:
      - name: id
        in: path
        required: true
        schema:
          type: string
    get:
      summary: Fetch a session resource
      responses:
        '200':
          description: Session resource
          content:
            application/json:
              schema:
                $ref: '#/components/schemas/Session'
        default:
          $ref: '#/components/responses/Error'
    delete:
      summary: Close a session, cancelling its in-flight jobs
      description: >-
        In-flight jobs of the session fail with the coded session_closed
        state instead of running orphaned.
      responses:
        '200':
          description: Closed
        default:
          $ref: '#/components/responses/Error'
  /stats:
    get:
      summary: Server, session, cache, scheduler, and cost-model counters
      responses:
        '200':
          description: Stats report
          content:
            application/json:
              schema:
                type: object
  /healthz:
    get:
      summary: Liveness and build info (503 while draining)
      responses:
        '200':
          description: Serving
          content:
            application/json:
              schema:
                $ref: '#/components/schemas/Healthz'
        '503':
          description: Draining
          content:
            application/json:
              schema:
                $ref: '#/components/schemas/Healthz'
components:
  parameters:
    JobID:
      name: id
      in: path
      required: true
      schema:
        type: string
        pattern: '^j[0-9]{6,}$'
  responses:
    Error:
      description: Coded error
      content:
        application/json:
          schema:
            type: object
            properties:
              error:
                $ref: '#/components/schemas/Error'
  schemas:
    QueryRequest:
      type: object
      required: [sql]
      properties:
        sql:
          type: string
          description: CrowdSQL script (one or more ;-separated statements)
        session:
          type: string
          description: Registered session id; empty = anonymous one-shot
    Job:
      type: object
      required: [id, state]
      properties:
        id:
          type: string
        state:
          type: string
          description: >-
            interrupted is reached only across a server restart, when the
            durable journal held the job mid-flight and its script could
            not be resumed (it contains writes, or its session did not
            survive); the job's journaled rows remain readable
          enum:
%s        session:
          type: string
        columns:
          type: array
          items:
            type: string
        rows_emitted:
          type: integer
        affected:
          type: integer
        plan:
          type: string
        warnings:
          type: array
          items:
            type: string
        statements_done:
          type: integer
        stats:
          type: object
        predicted_cents:
          type: number
        predicted_seconds:
          type: number
        spent_cents:
          type: number
          description: Crowd spend committed so far (live while running)
        actual_cents:
          type: number
        snapshot_ts:
          type: integer
          description: >-
            MVCC commit timestamp the latest SELECT's snapshot pinned;
            every streamed row is the database as of that instant, even
            while concurrent writers commit mid-crowd-wait
        trace_id:
          type: string
          description: >-
            Name of the job's span tree at GET /v1/queries/{id}/trace
            (absent when the engine runs with tracing disabled)
        error:
          $ref: '#/components/schemas/Error'
    QueryResult:
      type: object
      properties:
        session:
          type: string
        columns:
          type: array
          items:
            type: string
        rows:
          type: array
          items:
            type: array
            items:
              type: string
              nullable: true
        affected:
          type: integer
        plan:
          type: string
        warnings:
          type: array
          items:
            type: string
        stats:
          type: object
        predicted_cents:
          type: number
        predicted_seconds:
          type: number
        actual_cents:
          type: number
    Session:
      type: object
      properties:
        id:
          type: string
        queries:
          type: integer
        budget_left:
          type: integer
        stats:
          type: object
    Trace:
      type: object
      required: [trace_id, root]
      properties:
        trace_id:
          type: string
        duration_micros:
          type: integer
        spans:
          type: integer
        root:
          $ref: '#/components/schemas/Span'
    Span:
      type: object
      required: [name]
      properties:
        name:
          type: string
        start_micros:
          type: integer
          description: Offset from the trace start
        duration_micros:
          type: integer
        attrs:
          type: object
          additionalProperties:
            type: string
        events:
          type: array
          items:
            type: string
        children:
          type: array
          items:
            $ref: '#/components/schemas/Span'
    Healthz:
      type: object
      required: [status]
      properties:
        status:
          type: string
          enum:
            - ok
            - draining
        version:
          type: string
        uptime_seconds:
          type: number
        shards:
          type: integer
        active_sessions:
          type: integer
        active_jobs:
          type: integer
    Error:
      type: object
      required: [code, message]
      properties:
        code:
          type: string
          enum:
%s        message:
          type: string
`, openAPIVersion, states, codes))
}
