package server

import (
	"strings"
	"testing"
)

// TestBudgetAdmissionRejectsBeforePosting: with AdmissionHeadroom set, a
// script forecast to overrun the session budget is rejected with the
// coded budget_exhausted error before a single HIT group is posted —
// zero cents spent, budget untouched — and the decision is visible in
// the admission metrics and the /stats cost_model report.
func TestBudgetAdmissionRejectsBeforePosting(t *testing.T) {
	const nPairs = 8
	eng := pairEngine(t, 19, nPairs)
	srv := New(eng, Config{AdmissionHeadroom: 1})

	capped, serr := srv.CreateSession(1) // forecast needs ~nPairs comparisons
	if serr != nil {
		t.Fatal(serr)
	}
	_, serr = srv.StartJob(capped.ID(), "SELECT id FROM Pair WHERE a ~= b")
	if serr == nil {
		t.Fatal("over-budget script was admitted")
	}
	if serr.Code != CodeBudgetExhausted {
		t.Fatalf("rejection code = %s, want %s", serr.Code, CodeBudgetExhausted)
	}
	if !strings.Contains(serr.Message, "nothing was posted") {
		t.Errorf("rejection message %q should state nothing was posted", serr.Message)
	}
	if st := eng.Tasks().Stats(); st.GroupsPosted != 0 || st.ApprovedSpend != 0 {
		t.Errorf("rejection spent money: %d groups, %d cents approved", st.GroupsPosted, st.ApprovedSpend)
	}
	if got := capped.Info().BudgetLeft; got != 1 {
		t.Errorf("rejection touched the budget: left = %d, want 1", got)
	}
	adm := srv.Stats().CostModel.Admission
	if adm.RejectedBudget != 1 {
		t.Errorf("rejected_budget = %d, want 1", adm.RejectedBudget)
	}

	// An unlimited session sails through, and its settled spend feeds the
	// predicted-vs-actual accuracy aggregate.
	free, serr := srv.CreateSession(-1)
	if serr != nil {
		t.Fatal(serr)
	}
	job, serr := srv.StartJob(free.ID(), "SELECT id FROM Pair WHERE a ~= b")
	if serr != nil {
		t.Fatal(serr)
	}
	if state := waitDone(t, job); state != JobDone {
		t.Fatalf("admitted job state = %s (err %v), want done", state, job.Err())
	}
	adm = srv.Stats().CostModel.Admission
	if adm.Admitted < 1 {
		t.Errorf("admitted = %d, want >= 1", adm.Admitted)
	}
	if adm.ForecastJobs != 0 {
		// Unlimited budgets skip the forecast, so no accuracy sample.
		t.Errorf("forecast_jobs = %d, want 0 (unlimited budget is trivially admitted)", adm.ForecastJobs)
	}

	// A generous headroom re-admits the same capped forecast, and the
	// completed job lands one predicted-vs-actual accuracy sample.
	lax := New(eng, Config{AdmissionHeadroom: float64(nPairs) * 2})
	sess, serr := lax.CreateSession(1)
	if serr != nil {
		t.Fatal(serr)
	}
	job, serr = lax.StartJob(sess.ID(), "SELECT id FROM Pair WHERE a ~= b")
	if serr != nil {
		t.Fatalf("headroom should have admitted: %v", serr)
	}
	if state := waitDone(t, job); state != JobDone {
		t.Fatalf("job state = %s (err %v), want done", state, job.Err())
	}
	adm = lax.Stats().CostModel.Admission
	if adm.ForecastJobs != 1 || adm.PredictedCents <= 0 {
		t.Errorf("accuracy sample = %+v, want 1 forecast job with positive predicted cents", adm)
	}
}
