package server

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"crowddb/internal/core"
	"crowddb/internal/crowd"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/sqltypes"
	"crowddb/internal/taskmgr"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

// pairEngine builds an engine with a Pair table of n distinct company
// surface-form pairs, each needing one CROWDEQUAL to resolve. The
// conference oracle answers equality by loose normalization, so ground
// truth is deterministic.
func pairEngine(t *testing.T, seed int64, n int) *core.Engine {
	t.Helper()
	conf := workload.NewConference(8, seed)
	eng, err := core.Open(core.Config{
		Platform: amt.NewDefault(seed),
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if _, err := eng.Exec(`CREATE TABLE Pair (id INTEGER PRIMARY KEY, a STRING, b STRING)`); err != nil {
		t.Fatal(err)
	}
	cs := workload.NewCompanies(n, seed)
	for i, c := range cs.List {
		variant := c.Variants[len(c.Variants)-1] // lower-cased canonical: a true match
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO Pair VALUES (%d, %s, %s)",
			i, sqltypes.NewString(c.Canonical).SQLLiteral(), sqltypes.NewString(variant).SQLLiteral())); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// TestConcurrentSessionsSharedCost: K sessions concurrently run the same
// CROWDEQUAL query set. The shared cache plus singleflight must bound the
// global paid comparisons at the number of unique pairs — each pair is
// paid exactly once no matter how many sessions race on it — and every
// session must see identical rows.
func TestConcurrentSessionsSharedCost(t *testing.T) {
	const nPairs, kSessions, mQueries = 12, 6, 3
	eng := pairEngine(t, 3, nPairs)
	srv := New(eng, Config{})

	query := "SELECT id FROM Pair WHERE a ~= b"
	type out struct {
		rows [][]string
		err  *Error
	}
	results := make([][]out, kSessions)
	var wg sync.WaitGroup
	for k := 0; k < kSessions; k++ {
		sess, serr := srv.CreateSession(-1)
		if serr != nil {
			t.Fatal(serr)
		}
		k := k
		results[k] = make([]out, mQueries)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := 0; m < mQueries; m++ {
				res, qerr := srv.querySession(sess, query)
				if qerr != nil {
					results[k][m] = out{err: qerr}
					continue
				}
				var rows [][]string
				for _, r := range res.Rows {
					row := make([]string, len(r))
					for i, v := range r {
						row[i] = v.String()
					}
					rows = append(rows, row)
				}
				results[k][m] = out{rows: rows}
			}
		}()
	}
	wg.Wait()

	for k := range results {
		for m := range results[k] {
			if results[k][m].err != nil {
				t.Fatalf("session %d query %d: %v", k, m, results[k][m].err)
			}
			if !reflect.DeepEqual(results[k][m].rows, results[0][0].rows) {
				t.Errorf("session %d query %d diverged:\n%v\nvs\n%v",
					k, m, results[k][m].rows, results[0][0].rows)
			}
		}
	}

	// Global crowd cost: exactly one paid comparison per unique pair.
	paid := 0
	for _, info := range srv.Stats().Sessions {
		paid += info.Stats.Comparisons
	}
	if paid != nPairs {
		t.Errorf("paid comparisons = %d, want %d (one per unique pair)", paid, nPairs)
	}
	if st := eng.Tasks().Stats(); st.HITsPosted != nPairs {
		t.Errorf("HITs posted = %d, want %d", st.HITsPosted, nPairs)
	}
	if cs := eng.CacheStats(); cs.Misses != nPairs {
		t.Errorf("cache misses = %d, want %d", cs.Misses, nPairs)
	}
}

// TestSingleflightBlocksDuplicate: while a comparison is in flight
// (claimed but unresolved), a query needing the same pair must post zero
// HIT groups and unblock the moment the answer is memoized.
func TestSingleflightBlocksDuplicate(t *testing.T) {
	eng := pairEngine(t, 5, 1)
	srv := New(eng, Config{})
	sess, serr := srv.CreateSession(-1)
	if serr != nil {
		t.Fatal(serr)
	}

	// Pose as the other session's in-flight leader.
	cs := workload.NewCompanies(1, 5)
	l := cs.List[0].Canonical
	r := cs.List[0].Variants[len(cs.List[0].Variants)-1]
	leader := eng.Cache().ClaimEqual("", l, r)
	if !leader.Leader {
		t.Fatal("test setup: expected to lead the claim")
	}

	done := make(chan *Error, 1)
	go func() {
		res, qerr := srv.querySession(sess, "SELECT id FROM Pair WHERE a ~= b")
		if qerr == nil && len(res.Rows) != 1 {
			qerr = errf(CodeInternal, "got %d rows, want 1", len(res.Rows))
		}
		done <- qerr
	}()

	// The query must neither finish nor post a HIT group while the pair
	// is foreign-owned.
	time.Sleep(50 * time.Millisecond)
	select {
	case qerr := <-done:
		t.Fatalf("query finished while its comparison was in flight elsewhere: %v", qerr)
	default:
	}
	if st := eng.Tasks().Stats(); st.GroupsPosted != 0 {
		t.Fatalf("duplicate concurrent comparison posted %d HIT groups, want 0", st.GroupsPosted)
	}

	eng.Cache().PutEqual("", l, r, true) // the "other session" resolves
	if qerr := <-done; qerr != nil {
		t.Fatal(qerr)
	}
	if st := eng.Tasks().Stats(); st.GroupsPosted != 0 {
		t.Errorf("after resolution: %d HIT groups posted, want 0", st.GroupsPosted)
	}
	info := sess.Info()
	if info.Stats.SharedFlights != 1 || info.Stats.Comparisons != 0 {
		t.Errorf("session stats = %+v, want 1 shared flight and 0 paid", info.Stats)
	}
}

// TestSessionBudgetIsolation: one session's exhausted budget must not
// constrain another session on the same engine.
func TestSessionBudgetIsolation(t *testing.T) {
	const nPairs = 8
	eng := pairEngine(t, 7, nPairs)
	srv := New(eng, Config{})

	capped, serr := srv.CreateSession(2)
	if serr != nil {
		t.Fatal(serr)
	}
	free, serr := srv.CreateSession(-1)
	if serr != nil {
		t.Fatal(serr)
	}

	if _, qerr := srv.querySession(capped, "SELECT id FROM Pair WHERE a ~= b"); qerr != nil {
		t.Fatal(qerr)
	}
	ci := capped.Info()
	if ci.Stats.Comparisons > 2 {
		t.Errorf("capped session paid %d comparisons, budget was 2", ci.Stats.Comparisons)
	}
	if ci.Stats.BudgetDenied == 0 {
		t.Error("capped session should have been denied some comparisons")
	}
	if ci.BudgetLeft != 0 {
		t.Errorf("budget left = %d, want 0", ci.BudgetLeft)
	}
	// Next crowd query on the capped session is refused outright.
	if _, qerr := srv.querySession(capped, "SELECT id FROM Pair WHERE a ~= b"); qerr == nil || qerr.Code != CodeBudgetExhausted {
		t.Fatalf("exhausted session: got %v, want %s", qerr, CodeBudgetExhausted)
	}

	// The free session resolves everything (2 already cached).
	if _, qerr := srv.querySession(free, "SELECT id FROM Pair WHERE a ~= b"); qerr != nil {
		t.Fatal(qerr)
	}
	fi := free.Info()
	if fi.Stats.Comparisons != nPairs-2 {
		t.Errorf("free session paid %d comparisons, want %d (2 were already cached by the capped session)",
			fi.Stats.Comparisons, nPairs-2)
	}
	if fi.Stats.BudgetDenied != 0 {
		t.Errorf("free session denied %d comparisons", fi.Stats.BudgetDenied)
	}
}

// TestConcurrentQueriesCannotOverspendBudget: budget reservation is
// atomic, so concurrent statements on one session never pay more than
// the session's budget in aggregate.
func TestConcurrentQueriesCannotOverspendBudget(t *testing.T) {
	const nPairs, budget = 10, 3
	eng := pairEngine(t, 31, nPairs)
	srv := New(eng, Config{})
	sess, serr := srv.CreateSession(budget)
	if serr != nil {
		t.Fatal(serr)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Budget-exhausted rejections are acceptable; overspending is not.
			srv.querySession(sess, "SELECT id FROM Pair WHERE a ~= b") //nolint:errcheck
		}()
	}
	wg.Wait()
	if paid := sess.Info().Stats.Comparisons; paid > budget {
		t.Errorf("session paid %d comparisons against a budget of %d", paid, budget)
	}
	if left := sess.Info().BudgetLeft; left != 0 {
		t.Errorf("budget left = %d, want 0 after contended spending", left)
	}
}

// TestEvictedAnswersReadThroughNotRepurchased: with a residency cap, an
// answer evicted from the cache is re-read from the system table on the
// next miss — the crowd is never paid twice for the same question.
func TestEvictedAnswersReadThroughNotRepurchased(t *testing.T) {
	const nPairs, cap = 6, 2
	conf := workload.NewConference(4, 41)
	eng, err := core.Open(core.Config{
		Platform:        amt.NewDefault(41),
		Oracle:          conf.Oracle(),
		Payment:         wrm.DefaultPolicy(),
		CompareCacheCap: cap,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if _, err := eng.Exec(`CREATE TABLE Pair (id INTEGER PRIMARY KEY, a STRING, b STRING)`); err != nil {
		t.Fatal(err)
	}
	cs := workload.NewCompanies(nPairs, 41)
	for i, c := range cs.List {
		variant := c.Variants[len(c.Variants)-1]
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO Pair VALUES (%d, %s, %s)",
			i, sqltypes.NewString(c.Canonical).SQLLiteral(), sqltypes.NewString(variant).SQLLiteral())); err != nil {
			t.Fatal(err)
		}
	}

	first, err := eng.Query("SELECT id FROM Pair WHERE a ~= b")
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Comparisons != nPairs {
		t.Fatalf("first pass paid %d, want %d", first.Stats.Comparisons, nPairs)
	}
	if cst := eng.CacheStats(); cst.Size != cap || cst.Evictions != nPairs-cap {
		t.Fatalf("cache after first pass: %+v", cst)
	}

	second, err := eng.Query("SELECT id FROM Pair WHERE a ~= b")
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Comparisons != 0 {
		t.Errorf("second pass re-purchased %d evicted answers", second.Stats.Comparisons)
	}
	if st := eng.Tasks().Stats(); st.HITsPosted != nPairs {
		t.Errorf("HITs posted = %d, want %d (no re-asks)", st.HITsPosted, nPairs)
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Errorf("restored answers changed the result:\n%v\nvs\n%v", first.Rows, second.Rows)
	}
}

// TestSubqueryCannotBypassBudget: an IN-subquery spends from the
// statement's remaining budget, not a fresh copy.
func TestSubqueryCannotBypassBudget(t *testing.T) {
	const budget = 3
	eng := pairEngine(t, 37, 6)
	if _, err := eng.Exec(`CREATE TABLE Pair2 (id INTEGER PRIMARY KEY, a STRING, b STRING)`); err != nil {
		t.Fatal(err)
	}
	cs := workload.NewCompanies(6, 99)
	for i, c := range cs.List {
		variant := c.Variants[len(c.Variants)-1]
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO Pair2 VALUES (%d, %s, %s)",
			i, sqltypes.NewString(c.Canonical).SQLLiteral(), sqltypes.NewString(variant).SQLLiteral())); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(eng, Config{})
	sess, serr := srv.CreateSession(budget)
	if serr != nil {
		t.Fatal(serr)
	}
	if _, qerr := srv.querySession(sess,
		"SELECT id FROM Pair WHERE id IN (SELECT id FROM Pair2 WHERE a ~= b) AND a ~= b"); qerr != nil {
		t.Fatal(qerr)
	}
	info := sess.Info()
	if info.Stats.Comparisons > budget {
		t.Errorf("statement with subquery paid %d comparisons against a budget of %d",
			info.Stats.Comparisons, budget)
	}
	if info.BudgetLeft < 0 {
		t.Errorf("budget left = %d", info.BudgetLeft)
	}
}

// TestServerDeterministicVsDirectEngine: a single server session must be
// bit-identical to driving the engine directly on a fresh instance with
// the same seed (the server adds no behavior on the single-session path).
func TestServerDeterministicVsDirectEngine(t *testing.T) {
	queries := []string{
		"SELECT id FROM Pair WHERE a ~= b",
		"SELECT a FROM Pair ORDER BY CROWDORDER(a, 'Which name looks more official?') LIMIT 5",
		"SELECT id FROM Pair WHERE a ~= b", // warm-cache rerun
	}
	run := func(viaServer bool) [][][]sqltypes.Value {
		eng := pairEngine(t, 11, 6)
		var all [][][]sqltypes.Value
		for _, q := range queries {
			var res *core.Result
			if viaServer {
				srv := New(eng, Config{})
				sess, serr := srv.CreateSession(-1)
				if serr != nil {
					t.Fatal(serr)
				}
				r, qerr := srv.querySession(sess, q)
				if qerr != nil {
					t.Fatal(qerr)
				}
				res = r
			} else {
				r, err := eng.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				res = r
			}
			rows := make([][]sqltypes.Value, len(res.Rows))
			for i, r := range res.Rows {
				rows[i] = r
			}
			all = append(all, rows)
		}
		return all
	}
	direct := run(false)
	served := run(true)
	if !reflect.DeepEqual(direct, served) {
		t.Errorf("server path diverged from direct engine:\ndirect: %v\nserved: %v", direct, served)
	}
}

// TestBackpressureBusy: a deep task-manager submission queue must shed
// new queries with server_busy instead of deepening the backlog.
func TestBackpressureBusy(t *testing.T) {
	eng := pairEngine(t, 13, 2)
	srv := New(eng, Config{MaxQueueDepth: 2})

	// Flood the scheduler: the async window (8) fills, the rest queue.
	group := func(i int) *crowd.HITGroup {
		g := &crowd.HITGroup{
			Title: "flood", Kind: crowd.TaskProbeValues,
			Reward: 2, Assignments: 1,
		}
		g.HITs = append(g.HITs, &crowd.HIT{
			ID:   fmt.Sprintf("flood-%03d", i),
			Kind: crowd.TaskProbeValues,
			Fields: []crowd.Field{
				{Name: "value", Kind: crowd.FieldInput, Label: "v"},
			},
			Truth: &crowd.SimTruth{Truth: map[string]string{"value": "x"}},
		})
		return g
	}
	var pendings []*taskmgr.Pending
	for i := 0; i < 14; i++ { // 8 in flight + 6 queued > MaxQueueDepth
		pendings = append(pendings, eng.Tasks().Submit(group(i)))
	}
	if _, queued := eng.Tasks().Load(); queued <= 2 {
		t.Fatalf("test setup: queue depth %d, want > 2", queued)
	}

	if _, qerr := srv.Query("", "SELECT id FROM Pair"); qerr == nil || qerr.Code != CodeBusy {
		t.Fatalf("got %v, want %s", qerr, CodeBusy)
	}

	for _, p := range pendings {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if res, qerr := srv.Query("", "SELECT id FROM Pair"); qerr != nil || len(res.Rows) != 2 {
		t.Fatalf("after drain: res=%v err=%v", res, qerr)
	}

	st := srv.Stats()
	if st.Server.Rejected != 1 || st.Server.Queries != 1 {
		t.Errorf("server stats = %+v", st.Server)
	}
}

// TestGracefulShutdownDrains: in-flight queries finish, new ones are
// refused with shutting_down.
func TestGracefulShutdownDrains(t *testing.T) {
	eng := pairEngine(t, 17, 10)
	srv := New(eng, Config{})

	var wg sync.WaitGroup
	errs := make([]*Error, 4)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = srv.Query("", "SELECT id FROM Pair WHERE a ~= b")
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, qerr := range errs {
		if qerr != nil && qerr.Code != CodeShuttingDown {
			t.Errorf("query %d: unexpected error %v", i, qerr)
		}
	}
	if _, qerr := srv.Query("", "SELECT id FROM Pair"); qerr == nil || qerr.Code != CodeShuttingDown {
		t.Fatalf("post-shutdown query: got %v, want %s", qerr, CodeShuttingDown)
	}
	if _, serr := srv.CreateSession(0); serr == nil || serr.Code != CodeShuttingDown {
		t.Fatalf("post-shutdown session: got %v, want %s", serr, CodeShuttingDown)
	}
	if srv.Healthy() {
		t.Error("draining server reports healthy")
	}
}

// TestSessionLimitAndErrors covers the coded-error satellite: parse
// errors, unknown sessions, and the session cap.
func TestSessionLimitAndErrors(t *testing.T) {
	eng := pairEngine(t, 19, 1)
	srv := New(eng, Config{MaxSessions: 2})

	if _, qerr := srv.Query("", "SELEC nope"); qerr == nil || qerr.Code != CodeParse {
		t.Fatalf("parse: got %v, want %s", qerr, CodeParse)
	}
	if _, qerr := srv.Query("s999999", "SELECT id FROM Pair"); qerr == nil || qerr.Code != CodeUnknownSession {
		t.Fatalf("unknown session: got %v, want %s", qerr, CodeUnknownSession)
	}
	if _, qerr := srv.Query("", "SELECT id FROM NoSuchTable"); qerr == nil || qerr.Code != CodeInternal {
		t.Fatalf("exec error: got %v, want %s", qerr, CodeInternal)
	}

	a, _ := srv.CreateSession(0)
	if _, serr := srv.CreateSession(0); serr != nil {
		t.Fatal(serr)
	}
	if _, serr := srv.CreateSession(0); serr == nil || serr.Code != CodeTooManySessions {
		t.Fatalf("session cap: got %v, want %s", serr, CodeTooManySessions)
	}
	if err := srv.CloseSession(a.ID()); err != nil {
		t.Fatal(err)
	}
	if _, serr := srv.CreateSession(0); serr != nil {
		t.Fatalf("slot freed by close: %v", serr)
	}
	if err := srv.CloseSession(a.ID()); err == nil || err.Code != CodeUnknownSession {
		t.Fatalf("double close: got %v, want %s", err, CodeUnknownSession)
	}
}
