package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestOpenAPISpecCoversSurface is the spec load check: the document must
// be structurally sound and cover every route, job state, and error code
// the server actually serves — the contract cannot drift silently.
func TestOpenAPISpecCoversSurface(t *testing.T) {
	spec := string(OpenAPISpec())
	if !strings.HasPrefix(spec, "openapi: 3.0.3\n") {
		t.Fatalf("spec must declare OpenAPI 3.0.3, got %q", spec[:40])
	}
	for _, section := range []string{"info:", "paths:", "components:", "schemas:"} {
		if !strings.Contains(spec, section) {
			t.Errorf("spec missing section %s", section)
		}
	}
	if strings.Contains(spec, "\t") {
		t.Error("spec contains tabs (invalid YAML indentation)")
	}
	for _, route := range httpRoutes() {
		path := route[strings.Index(route, " ")+1:]
		if !strings.Contains(spec, "\n  "+path+":") {
			t.Errorf("spec missing path %s", path)
		}
	}
	for _, st := range jobStates() {
		if !strings.Contains(spec, "- "+string(st)) {
			t.Errorf("spec missing job state %s", st)
		}
	}
	for _, code := range errorCodes() {
		if !strings.Contains(spec, "- "+string(code)) {
			t.Errorf("spec missing error code %s", code)
		}
	}
}

// TestOpenAPIRoutesServed verifies httpRoutes() names real mux routes:
// every listed pattern must be handled by our handlers (which answer
// JSON, a stream, or the Prometheus text exposition), never by the mux's
// plain-text 404.
func TestOpenAPIRoutesServed(t *testing.T) {
	eng := pairEngine(t, 43, 1)
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	for _, route := range httpRoutes() {
		parts := strings.SplitN(route, " ", 2)
		method, path := parts[0], parts[1]
		path = strings.ReplaceAll(path, "{id}", "zzz")
		var body *bytes.Reader
		if method == http.MethodPost {
			body = bytes.NewReader([]byte(`{"sql":"SHOW TABLES;"}`))
		} else {
			body = bytes.NewReader(nil)
		}
		req, err := http.NewRequest(method, ts.URL+path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", route, err)
		}
		ct := resp.Header.Get("Content-Type")
		resp.Body.Close()
		if !strings.Contains(ct, "json") && !strings.Contains(ct, "stream") &&
			!strings.Contains(ct, "version=0.0.4") {
			t.Errorf("%s: served %d with Content-Type %q — mux fallthrough? (route not registered)",
				route, resp.StatusCode, ct)
		}
	}
}

// TestOpenAPIErrorCodesComplete pins errorCodes() against the Code
// constants: adding a code without documenting it fails here.
func TestOpenAPIErrorCodesComplete(t *testing.T) {
	want := []Code{
		CodeParse, CodeBudgetExhausted, CodeBusy, CodeShuttingDown,
		CodeUnknownSession, CodeTooManySessions, CodeInternal,
		CodeUnknownJob, CodeCancelled, CodeSessionClosed, CodeUnsupportedVersion,
	}
	have := map[Code]bool{}
	for _, c := range errorCodes() {
		have[c] = true
	}
	for _, c := range want {
		if !have[c] {
			t.Errorf("errorCodes() missing %s", c)
		}
	}
}

// TestOpenAPIDocFresh fails when the committed docs/openapi.yaml is
// stale relative to the generator (run `go run ./cmd/crowdopenapi` to
// refresh).
func TestOpenAPIDocFresh(t *testing.T) {
	path := filepath.Join("..", "..", "docs", "openapi.yaml")
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v (generate with `go run ./cmd/crowdopenapi`)", path, err)
	}
	if !bytes.Equal(disk, OpenAPISpec()) {
		t.Errorf("docs/openapi.yaml is stale; regenerate with `go run ./cmd/crowdopenapi`")
	}
}

// TestJobInfoFieldsDocumented keeps the Job schema in the spec aligned
// with the JobInfo JSON shape: every emitted key must appear in the
// document.
func TestJobInfoFieldsDocumented(t *testing.T) {
	info := JobInfo{
		ID: "j000001", State: JobRunning, Session: "s000001",
		Columns: []string{"a"}, RowsEmitted: 1, Affected: 1, Plan: "p",
		Warnings: []string{"w"}, StatementsDone: 1,
		PredictedCents: 1, PredictedSeconds: 1, SpentCents: 1, ActualCents: 1,
		Error: errf(CodeInternal, "x"),
	}
	data, err := json.Marshal(info)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	spec := string(OpenAPISpec())
	for key := range m {
		if !strings.Contains(spec, fmt.Sprintf("        %s:", key)) {
			t.Errorf("Job schema missing documented field %q", key)
		}
	}
}
