package server

// Server-side observability: the /metrics endpoint scrapes the shared
// engine registry (plus the server's own job/session families registered
// here), and /v1/queries/{id}/trace serves a job's retained span tree.

import (
	"net/http"
	"time"

	"crowddb/internal/obs"
)

// Version identifies the crowddbd build; healthz reports it.
const Version = "0.7.0"

// registerMetrics exports the server's families into the engine's
// registry. Func-backed series read the server's counters under s.mu at
// scrape time (the registry evaluates them outside its own lock);
// terminal-job and streamed-row counters are real instruments updated on
// the job path. Registration is idempotent, so two servers over one
// engine simply share the families (the func-backed ones stay bound to
// the first server).
func (s *Server) registerMetrics() {
	reg := s.eng.Metrics()
	if reg == nil {
		return
	}
	s.mRowsStreamed = reg.Counter("crowddb_jobs_streamed_rows_total",
		"result rows streamed into job buffers")
	s.mJobsByState = make(map[JobState]*obs.Counter)
	for _, st := range []JobState{JobDone, JobFailed, JobCancelled, JobInterrupted} {
		s.mJobsByState[st] = reg.Counter("crowddb_jobs_total",
			"jobs retired by terminal state", "state", string(st))
	}
	counter := func(name, help string, f func(Stats) int64) {
		reg.CounterFunc(name, help, func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(f(s.stats))
		})
	}
	counter("crowddb_server_queries_total", "scripts completed successfully",
		func(st Stats) int64 { return st.Queries })
	counter("crowddb_server_rejected_total", "queries refused by admission control",
		func(st Stats) int64 { return st.Rejected })
	counter("crowddb_server_errors_total", "queries failed after admission",
		func(st Stats) int64 { return st.Errors })
	reg.CounterFunc("crowddb_server_admission_admitted_total",
		"jobs admitted by the budget-aware admission forecast",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.adm.Admitted)
		})
	reg.CounterFunc("crowddb_server_admission_rejected_budget_total",
		"jobs rejected before posting because the forecast exceeded the session budget",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.adm.RejectedBudget)
		})
	reg.GaugeFunc("crowddb_server_active_sessions", "registered client sessions",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.sessions))
		})
	reg.GaugeFunc("crowddb_server_inflight_queries", "statements executing right now",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.inflight)
		})
	reg.GaugeFunc("crowddb_server_retained_jobs", "job resources still pollable",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.jobs))
		})
	reg.GaugeFunc("crowddb_server_uptime_seconds", "seconds since the server was assembled",
		func() float64 { return time.Since(s.started).Seconds() })
}

// handleMetrics serves the registry in Prometheus text exposition format:
// GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.eng.Metrics()
	if reg == nil {
		writeError(w, errf(CodeInternal, "metrics registry unavailable"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	reg.WritePrometheus(w)
}

// handleJobTrace serves a job's span tree: GET /v1/queries/{id}/trace.
// Unknown and retention-evicted job ids return the coded unknown_job 404;
// so does a known job whose trace is gone (tracing disabled, or the
// tracer's ring evicted it).
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, serr := s.Job(id); serr != nil {
		writeError(w, serr)
		return
	}
	tr := s.eng.Tracer().Lookup(id)
	if tr == nil {
		writeError(w, errf(CodeUnknownJob, "no trace retained for job %q (tracing disabled or evicted)", id))
		return
	}
	writeJSON(w, http.StatusOK, tr.JSON())
}

// healthzResponse is the GET /healthz body.
type healthzResponse struct {
	Status         string  `json:"status"`
	Version        string  `json:"version"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Shards         int     `json:"shards"`
	ActiveSessions int     `json:"active_sessions"`
	ActiveJobs     int     `json:"active_jobs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	sessions := len(s.sessions)
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	active := 0
	for _, j := range jobs {
		if !j.State().Terminal() {
			active++
		}
	}
	resp := healthzResponse{
		Status:         "ok",
		Version:        Version,
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Shards:         s.eng.NumShards(),
		ActiveSessions: sessions,
		ActiveJobs:     active,
	}
	status := http.StatusOK
	if draining {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
