package server

// The cancellation property suite — the acceptance contract for the
// jobs API: cancelling a crowd query at a random point mid-crowd-wait
//
//   1. never leaks goroutines (counter-based check with settle-wait),
//   2. never double-spends the session budget (budget_left is exactly
//      the initial budget minus paid comparisons, and never negative),
//   3. leaves the CompareCache singleflight table claim-free, and
//   4. stops posting new HIT groups once the job is terminal.

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
)

// waitGoroutines blocks until the goroutine count settles back to at
// most base (cancelled jobs unwind asynchronously after the terminal
// state is visible); on timeout it dumps stacks and fails.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	var sb strings.Builder
	pprof.Lookup("goroutine").WriteTo(&sb, 1) //nolint:errcheck // diagnostics
	t.Fatalf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), base, sb.String())
}

// TestCancelledSubqueryStillSettlesBudget: comparisons an IN-subquery
// already paid for must reach the session settlement when the outer
// statement is cancelled mid-subquery — the refund may only cover work
// that never happened (regression: the subquery's stats used to merge
// into the statement only on success, so cancellation refunded spent
// budget).
func TestCancelledSubqueryStillSettlesBudget(t *testing.T) {
	const budget = 10
	eng := pairEngine(t, 91, 2)
	if _, err := eng.Exec(`CREATE TABLE Pair2 (id INTEGER PRIMARY KEY, a STRING, b STRING)`); err != nil {
		t.Fatal(err)
	}
	cs := workload.NewCompanies(2, 91)
	for i, c := range cs.List {
		variant := c.Variants[len(c.Variants)-1]
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO Pair2 VALUES (%d, %s, %s)",
			i, sqltypes.NewString(c.Canonical).SQLLiteral(), sqltypes.NewString(variant).SQLLiteral())); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(eng, Config{})
	sess, serr := srv.CreateSession(budget)
	if serr != nil {
		t.Fatal(serr)
	}
	// Foreign-claim the second pair: the subquery's prefetch pays for the
	// first pair (own leader claim, collected), then parks as a follower
	// on this one until the job is cancelled.
	blocked := cs.List[1]
	leader := eng.Cache().ClaimEqual("", blocked.Canonical, blocked.Variants[len(blocked.Variants)-1])
	if !leader.Leader {
		t.Fatal("test setup: expected to lead the claim")
	}
	defer leader.Abandon()

	job, jerr := srv.StartJob(sess.ID(),
		"SELECT id FROM Pair WHERE id IN (SELECT id FROM Pair2 WHERE a ~= b)")
	if jerr != nil {
		t.Fatal(jerr)
	}
	// Let the subquery pay for the unclaimed pair and park on the other.
	deadline := time.Now().Add(5 * time.Second)
	for eng.CacheStats().Misses == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if st := job.State(); st.Terminal() {
		t.Fatalf("job finished (%s) while a subquery pair was foreign-owned", st)
	}
	if _, cerr := srv.CancelJob(job.ID()); cerr != nil {
		t.Fatal(cerr)
	}
	if st := waitState(t, job); st != JobCancelled {
		t.Fatalf("state = %s, err = %v", st, job.Err())
	}
	info := sess.Info()
	if info.Stats.Comparisons != 1 {
		t.Fatalf("session saw %d paid comparisons, want 1 (the subquery's own leader pair)", info.Stats.Comparisons)
	}
	if info.BudgetLeft != budget-1 {
		t.Fatalf("budget_left = %d, want %d (paid subquery work must not be refunded)", info.BudgetLeft, budget-1)
	}
}

// TestCancelPropertyNoLeakNoDoubleSpendNoClaims runs the random-point
// cancellation property over fresh engines: a CROWDORDER job (many
// crowd rounds) is cancelled after a random delay that lands anywhere
// from pre-admission to deep inside the sort's crowd waits.
func TestCancelPropertyNoLeakNoDoubleSpendNoClaims(t *testing.T) {
	const (
		iters  = 18
		budget = 4
	)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < iters; i++ {
		i := i
		t.Run(fmt.Sprintf("iter%02d", i), func(t *testing.T) {
			eng := pairEngine(t, int64(100+i), 6)
			srv := New(eng, Config{})
			sess, serr := srv.CreateSession(budget)
			if serr != nil {
				t.Fatal(serr)
			}
			base := runtime.NumGoroutine()

			job, jerr := srv.StartJob(sess.ID(),
				"SELECT a FROM Pair ORDER BY CROWDORDER(a, 'Which name looks more official?')")
			if jerr != nil {
				t.Fatal(jerr)
			}
			time.Sleep(time.Duration(rng.Intn(4000)) * time.Microsecond)
			if _, cerr := srv.CancelJob(job.ID()); cerr != nil {
				t.Fatal(cerr)
			}
			state := waitState(t, job)
			if state != JobCancelled && state != JobDone {
				t.Fatalf("terminal state = %s (err %v)", state, job.Err())
			}

			// (1) No goroutine outlives the job.
			waitGoroutines(t, base)

			// (2) Budget settled exactly: left = budget - paid, never
			// negative, never more paid than budgeted.
			info := sess.Info()
			paid := info.Stats.Comparisons
			if paid > budget {
				t.Fatalf("paid %d comparisons against a budget of %d", paid, budget)
			}
			if info.BudgetLeft != budget-paid {
				t.Fatalf("budget_left = %d, want %d - %d (no double-spend, no lost refund)",
					info.BudgetLeft, budget, paid)
			}

			// (3) The singleflight table is claim-free.
			if n := eng.Cache().InFlight(); n != 0 {
				t.Fatalf("%d singleflight claims leaked", n)
			}

			// (4) A terminal job posts nothing new.
			posted := eng.Tasks().Stats().GroupsPosted
			time.Sleep(30 * time.Millisecond)
			if after := eng.Tasks().Stats().GroupsPosted; after != posted {
				t.Fatalf("groups posted after terminal state: %d -> %d", posted, after)
			}

			// The job's spend report agrees with the session's.
			jinfo := job.Info()
			if jinfo.Stats.Comparisons != paid {
				t.Errorf("job reports %d paid comparisons, session %d", jinfo.Stats.Comparisons, paid)
			}
		})
	}
}
