package server

// Durable jobs: every job lifecycle event — submission, state
// transitions, emitted rows, and the session budget movements that fund
// them — is journaled through a storage.RecordLog with the same fsync
// contract as the per-shard WALs. A crowddbd restart replays the journal
// and recovers every job coherently:
//
//   - finished jobs come back terminal with their results metadata and
//     full row buffers, so NDJSON/SSE clients reconnect with ?from=N
//     across the restart without duplicate or missing rows;
//   - queued/running read-only scripts resume execution: the script
//     re-runs from the top with the first len(recovered rows) sink
//     emissions suppressed, and because the comparison cache is itself
//     persistent, the re-executed prefix is answered from memoized
//     decisions — a recovered job never re-pays a comparison;
//   - anything that cannot be resumed (scripts with writes, jobs whose
//     session did not survive) fails cleanly with the coded interrupted
//     state instead of vanishing.
//
// Budget recovery is crash-exact in the conservative direction: a
// session's journal carries absolute budget records (written at every
// settle) plus per-row spend deltas counting the compare answers made
// durable since the last absolute record. Answers are persisted BEFORE
// their spend is journaled, and spend before the row, so a crash can
// only under-charge the session — never double-charge it.

import (
	"context"
	"encoding/json"
	"fmt"

	"crowddb/internal/exec"
	"crowddb/internal/faultinject"
	"crowddb/internal/parser"
	"crowddb/internal/storage"
)

// Journal record types (the "t" field of each JSON line).
const (
	recSession      = "session"       // session created (absolute budget)
	recSessionClose = "session_close" // session closed
	recBudget       = "budget"        // absolute budget after a settle
	recSubmit       = "submit"        // job submitted
	recRun          = "run"           // job admitted and running
	recSchema       = "schema"        // result-set columns known
	recRow          = "row"           // one emitted (rendered) row
	recSpend        = "spend"         // compare answers made durable since
	recEnd          = "end"           // terminal state reached
)

// journalRec is one JSON line of the jobs journal. Exactly one subset of
// fields is meaningful per record type.
type journalRec struct {
	T        string    `json:"t"`
	Session  string    `json:"session,omitempty"`
	Job      string    `json:"job,omitempty"`
	SQL      string    `json:"sql,omitempty"`
	Budget   *int      `json:"budget,omitempty"`
	Columns  []string  `json:"columns,omitempty"`
	Row      []*string `json:"row,omitempty"`
	N        int       `json:"n,omitempty"`
	State    JobState  `json:"state,omitempty"`
	Code     Code      `json:"code,omitempty"`
	Msg      string    `json:"msg,omitempty"`
	Affected int       `json:"affected,omitempty"`
	Stmts    int       `json:"stmts,omitempty"`
}

func (s *Server) journalEnabled() bool {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	return s.journal != nil
}

// journalAppend writes one record through the journal's sync mode.
// Nil-safe: a server without EnableJournal journals nothing.
func (s *Server) journalAppend(rec journalRec) {
	s.jmu.Lock()
	l := s.journal
	s.jmu.Unlock()
	if l == nil {
		return
	}
	l.Append(rec) //nolint:errcheck // a poisoned journal must not fail queries
}

func (s *Server) journalSession(sess *Session) {
	if !s.journalEnabled() {
		return
	}
	b := sess.budgetLeft()
	s.journalAppend(journalRec{T: recSession, Session: sess.id, Budget: &b})
}

func (s *Server) journalSessionClose(id string) {
	s.journalAppend(journalRec{T: recSessionClose, Session: id})
}

func (s *Server) journalSubmit(j *Job) {
	s.journalAppend(journalRec{T: recSubmit, Job: j.id, Session: j.sessionID, SQL: j.sql})
}

// journalRun records the queued->running transition; a crashpoint sits
// on every journaled state transition.
func (s *Server) journalRun(j *Job) {
	if !s.journalEnabled() {
		return
	}
	faultinject.Hit("server.job.state")
	if faultinject.Killed() {
		return
	}
	s.journalAppend(journalRec{T: recRun, Job: j.id})
}

// journalBudget writes the session's absolute remaining budget after a
// settle, superseding the spend deltas journaled since.
func (s *Server) journalBudget(sess *Session) {
	if !s.journalEnabled() || sess.id == anonymousSessionID {
		return
	}
	b := sess.budgetLeft()
	s.journalAppend(journalRec{T: recBudget, Session: sess.id, Budget: &b})
}

// journalEnd records a job's terminal state.
func (s *Server) journalEnd(j *Job) {
	if !s.journalEnabled() {
		return
	}
	faultinject.Hit("server.job.state")
	if faultinject.Killed() {
		return
	}
	j.mu.Lock()
	rec := journalRec{T: recEnd, Job: j.id, State: j.state, Affected: j.affected, Stmts: j.stmtsDone}
	if j.err != nil {
		rec.Code, rec.Msg = j.err.Code, j.err.Message
	}
	j.mu.Unlock()
	s.journalAppend(rec)
}

// jobSink wraps a job's row sink with durability: before a row is
// buffered (and therefore observable by a streaming client), the compare
// answers that produced it are flushed to the persistent cache, their
// count is journaled as a spend delta, and the row itself is journaled.
// The append is the acknowledgement barrier, so an offset a client has
// seen can never regress across a restart. During a resumed execution
// the first j.recovered emissions — rows already journaled and buffered
// before the crash — are suppressed entirely.
func (s *Server) jobSink(j *Job) func(exec.Row) error {
	if !s.journalEnabled() {
		return j.pushRow
	}
	return func(row exec.Row) error {
		faultinject.Hit("server.job.row")
		if faultinject.Killed() {
			return fmt.Errorf("server: process killed (fault injection)")
		}
		j.mu.Lock()
		skip := j.recovered > 0
		if skip {
			j.recovered--
		}
		j.mu.Unlock()
		if skip {
			return nil
		}
		// Persist-before-journal: answers first, their spend second, the
		// row last. A crash between any two steps under-charges only.
		if n, err := s.eng.FlushCompareAnswers(); err != nil {
			return err
		} else if n > 0 && j.sessionID != "" {
			s.journalAppend(journalRec{T: recSpend, Session: j.sessionID, N: n})
		}
		cells := renderRow(row)
		s.journalAppend(journalRec{T: recRow, Job: j.id, Row: cells})
		return j.pushCells(cells)
	}
}

// jobSchema wraps the OnSchema hook with journaling.
func (s *Server) jobSchema(j *Job) func([]string) {
	if !s.journalEnabled() {
		return j.startResultSet
	}
	return func(cols []string) {
		s.journalAppend(journalRec{T: recSchema, Job: j.id, Columns: cols})
		j.startResultSet(cols)
	}
}

// ---------------------------------------------------------------------------
// Recovery

// recoveredSession is one session's replayed state.
type recoveredSession struct {
	budget     int
	spendSince int // spend deltas after the last absolute budget record
	closed     bool
}

// recoveredJob is one job's replayed state.
type recoveredJob struct {
	id, session, sql string
	columns          []string
	rows             [][]*string
	state            JobState // "" = non-terminal at crash time
	code             Code
	msg              string
	affected, stmts  int
}

// resumable reports whether a script may safely re-execute after a
// restart: every statement must be read-only (SELECT / EXPLAIN / SHOW),
// so re-running it mutates nothing and the persistent comparison cache
// replays the crowd's answers for free.
func resumable(stmts []parser.Statement) bool {
	for _, stmt := range stmts {
		switch t := stmt.(type) {
		case *parser.Select, *parser.ShowTables:
		case *parser.Explain:
			if !resumable([]parser.Statement{t.Stmt}) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// EnableJournal turns on the durable jobs journal at path, recovering
// whatever a previous process journaled there. Call it once, after New
// and before serving traffic. Recovery rebuilds live sessions with their
// crash-exact remaining budgets, re-registers finished jobs with their
// results intact, resumes interrupted read-only scripts, fails
// unresumable ones with the coded interrupted state, and compacts the
// journal before new appends flow.
func (s *Server) EnableJournal(path string, mode storage.SyncMode) error {
	sessions := make(map[string]*recoveredSession)
	jobs := make(map[string]*recoveredJob)
	var order []string
	err := storage.ReplayRecordLog(path, func(line json.RawMessage) error {
		var rec journalRec
		if err := json.Unmarshal(line, &rec); err != nil {
			return err
		}
		switch rec.T {
		case recSession:
			rs := &recoveredSession{budget: -1}
			if rec.Budget != nil {
				rs.budget = *rec.Budget
			}
			sessions[rec.Session] = rs
		case recSessionClose:
			if rs, ok := sessions[rec.Session]; ok {
				rs.closed = true
			}
		case recBudget:
			if rs, ok := sessions[rec.Session]; ok && rec.Budget != nil {
				rs.budget, rs.spendSince = *rec.Budget, 0
			}
		case recSpend:
			if rs, ok := sessions[rec.Session]; ok {
				rs.spendSince += rec.N
			}
		case recSubmit:
			jobs[rec.Job] = &recoveredJob{id: rec.Job, session: rec.Session, sql: rec.SQL}
			order = append(order, rec.Job)
		case recRun:
			// Lifecycle breadcrumb only: a non-terminal job is handled the
			// same whether it was queued or already running.
		case recSchema:
			if rj, ok := jobs[rec.Job]; ok {
				rj.columns = rec.Columns
			}
		case recRow:
			if rj, ok := jobs[rec.Job]; ok {
				rj.rows = append(rj.rows, rec.Row)
			}
		case recEnd:
			if rj, ok := jobs[rec.Job]; ok {
				rj.state, rj.code, rj.msg = rec.State, rec.Code, rec.Msg
				rj.affected, rj.stmts = rec.Affected, rec.Stmts
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("server: jobs journal replay: %w", err)
	}

	// Decide every non-terminal job's disposition before compaction so the
	// rewritten journal already carries the interrupted end records.
	type resumption struct {
		job   *Job
		stmts []parser.Statement
	}
	var resume []resumption
	for _, id := range order {
		rj := jobs[id]
		if rj.state != "" {
			continue // terminal: re-registered as-is below
		}
		stmts, perr := parser.ParseAll(rj.sql)
		rs := sessions[rj.session]
		sessionLive := rj.session == "" || (rs != nil && !rs.closed)
		if perr != nil || !sessionLive || !resumable(stmts) {
			rj.state = JobInterrupted
			rj.code = CodeInterrupted
			switch {
			case !sessionLive:
				rj.msg = "restart interrupted the job and its session did not survive"
			default:
				rj.msg = "restart interrupted the job and its script is not resumable (contains writes)"
			}
			continue
		}
		sess := s.recoverSession(rj.session, rs)
		ctx, cancel := context.WithCancel(context.Background())
		job := &Job{
			id:           rj.id,
			sql:          rj.sql,
			sess:         sess,
			sessionID:    rj.session,
			price:        s.eng.PriceStats,
			ctx:          ctx,
			cancel:       cancel,
			notify:       make(chan struct{}),
			state:        JobQueued,
			columns:      rj.columns,
			rows:         rj.rows,
			recovered:    len(rj.rows),
			admPredicted: -1,
		}
		resume = append(resume, resumption{job: job, stmts: stmts})
	}

	// Rebuild live sessions with their recovered budgets, continue the id
	// sequences past everything replayed.
	s.mu.Lock()
	for id, rs := range sessions {
		if rs.closed {
			continue
		}
		s.sessions[id] = s.recoverSessionLocked(id, rs)
		var n int64
		if _, err := fmt.Sscanf(id, "s%d", &n); err == nil && n > s.seq {
			s.seq = n
		}
	}
	for _, id := range order {
		var n int64
		if _, err := fmt.Sscanf(id, "j%d", &n); err == nil && n > s.jobSeq {
			s.jobSeq = n
		}
	}
	s.mu.Unlock()

	// Compact: the rewritten journal carries live sessions (recovered
	// absolute budgets), then each retained job's submit/schema/rows and,
	// for terminal jobs, its end record. Spend deltas are folded away.
	log, err := storage.RewriteRecordLog(path, mode, func(add func(v any) error) error {
		for id, rs := range sessions {
			if rs.closed {
				continue
			}
			b := recoveredBudget(rs)
			if err := add(journalRec{T: recSession, Session: id, Budget: &b}); err != nil {
				return err
			}
		}
		for _, id := range order {
			rj := jobs[id]
			if err := add(journalRec{T: recSubmit, Job: rj.id, Session: rj.session, SQL: rj.sql}); err != nil {
				return err
			}
			if rj.columns != nil {
				if err := add(journalRec{T: recSchema, Job: rj.id, Columns: rj.columns}); err != nil {
					return err
				}
			}
			for _, row := range rj.rows {
				if err := add(journalRec{T: recRow, Job: rj.id, Row: row}); err != nil {
					return err
				}
			}
			if rj.state != "" {
				rec := journalRec{T: recEnd, Job: rj.id, State: rj.state,
					Code: rj.code, Msg: rj.msg, Affected: rj.affected, Stmts: rj.stmts}
				if err := add(rec); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("server: jobs journal compaction: %w", err)
	}
	s.jmu.Lock()
	s.journal = log
	s.jmu.Unlock()

	// Re-register terminal jobs (including the freshly interrupted ones)
	// and launch the resumptions.
	for _, id := range order {
		rj := jobs[id]
		if rj.state == "" {
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		job := &Job{
			id:           rj.id,
			sql:          rj.sql,
			sessionID:    rj.session,
			price:        s.eng.PriceStats,
			ctx:          ctx,
			cancel:       cancel,
			notify:       make(chan struct{}),
			state:        rj.state,
			columns:      rj.columns,
			rows:         rj.rows,
			affected:     rj.affected,
			stmtsDone:    rj.stmts,
			admPredicted: -1,
		}
		if rj.code != "" {
			job.err = &Error{Code: rj.code, Message: rj.msg}
		}
		s.mu.Lock()
		s.jobs[job.id] = job
		s.finished = append(s.finished, job.id)
		s.mu.Unlock()
		if rj.state == JobInterrupted {
			s.mJobsByState[JobInterrupted].Inc()
		}
	}
	for _, r := range resume {
		s.mu.Lock()
		s.jobs[r.job.id] = r.job
		s.mu.Unlock()
		r.job.trace = s.eng.Tracer().Start(r.job.id)
		r.job.rowsMetric = s.mRowsStreamed
		r.job.sess.addJob(r.job)
		go s.runJob(r.job, r.stmts)
	}
	return nil
}

// recoveredBudget resolves a replayed session's remaining budget: the
// last absolute record minus the spend journaled after it, floored at
// zero (unlimited budgets stay unlimited).
func recoveredBudget(rs *recoveredSession) int {
	if rs.budget < 0 {
		return -1
	}
	if b := rs.budget - rs.spendSince; b > 0 {
		return b
	}
	return 0
}

// recoverSession returns the live *Session for a replayed session id,
// creating (or fetching) it under s.mu; empty ids get a fresh anonymous
// session with the default budget (anonymous budgets are not journaled).
func (s *Server) recoverSession(id string, rs *recoveredSession) *Session {
	if id == "" {
		return &Session{id: anonymousSessionID, budget: s.effectiveBudget(0)}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recoverSessionLocked(id, rs)
}

func (s *Server) recoverSessionLocked(id string, rs *recoveredSession) *Session {
	if sess, ok := s.sessions[id]; ok {
		return sess
	}
	sess := &Session{id: id, budget: recoveredBudget(rs)}
	s.sessions[id] = sess
	return sess
}
