package server

// Tests for the MVCC-facing parts of the job resource: the snapshot
// timestamp a SELECT pins, and the coded unknown_job error a client gets
// when resuming a row stream for a job the retention cap already
// evicted (the stream must not be silently empty).

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestJobReportsSnapshotTS: a SELECT job must report the non-zero MVCC
// commit timestamp its snapshot pinned, both on the in-process resource
// and through the HTTP job document.
func TestJobReportsSnapshotTS(t *testing.T) {
	eng := pairEngine(t, 83, 2)
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	job, serr := srv.StartJob("", "SELECT id FROM Pair WHERE a ~= b")
	if serr != nil {
		t.Fatal(serr)
	}
	if st := waitState(t, job); st != JobDone {
		t.Fatalf("state = %s, err = %v", st, job.Err())
	}
	info := job.Info()
	if info.SnapshotTS <= 0 {
		t.Fatalf("SnapshotTS = %d, want > 0 (two INSERTs committed before the SELECT)", info.SnapshotTS)
	}
	// The two seed INSERTs each committed one transaction, so the SELECT's
	// snapshot must see at least both commits.
	if info.SnapshotTS < 2 {
		t.Errorf("SnapshotTS = %d, want >= 2", info.SnapshotTS)
	}

	resp, err := http.Get(ts.URL + "/v1/queries/" + job.ID())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	tsField, ok := doc["snapshot_ts"].(float64)
	if !ok || int64(tsField) != info.SnapshotTS {
		t.Fatalf("snapshot_ts in job document = %v, want %d", doc["snapshot_ts"], info.SnapshotTS)
	}
}

// TestEvictedJobRowsUnknownJob: GET /v1/queries/{id}/rows?from=N for a
// job evicted by the MaxJobs retention cap must fail with the coded
// unknown_job 404, not an empty or hanging stream (satellite: clients
// resuming a stream must learn the job is gone and re-submit).
func TestEvictedJobRowsUnknownJob(t *testing.T) {
	eng := pairEngine(t, 89, 2)
	srv := New(eng, Config{MaxJobs: 1})
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	first, serr := srv.StartJob("", "SELECT id FROM Pair")
	if serr != nil {
		t.Fatal(serr)
	}
	if st := waitState(t, first); st != JobDone {
		t.Fatalf("first job: state = %s, err = %v", st, first.Err())
	}
	// While retained, resuming the stream past the end works and reports
	// the terminal state.
	resp, err := http.Get(ts.URL + "/v1/queries/" + first.ID() + "/rows?from=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retained job rows: status %d, want 200", resp.StatusCode)
	}

	// A second finished job pushes the first past the MaxJobs=1 cap.
	second, serr := srv.StartJob("", "SELECT id FROM Pair")
	if serr != nil {
		t.Fatal(serr)
	}
	if st := waitState(t, second); st != JobDone {
		t.Fatalf("second job: state = %s, err = %v", st, second.Err())
	}

	resp, err = http.Get(ts.URL + "/v1/queries/" + first.ID() + "/rows?from=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job rows: status %d, want 404", resp.StatusCode)
	}
	var e struct {
		Error *Error `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error == nil || e.Error.Code != CodeUnknownJob {
		t.Fatalf("evicted job rows error = %+v, want code %s", e.Error, CodeUnknownJob)
	}
}
