package server

import (
	"fmt"
	"sync"

	"crowddb/internal/exec"
)

// Session is one client's handle on the shared engine. Sessions carry the
// per-client crowd budget and statistics; the store, catalog, task
// manager, and comparison cache are shared across all sessions, so one
// session's paid answers are every session's cache hits.
type Session struct {
	id string

	mu sync.Mutex
	// budget is the remaining crowd comparisons this session may pay for;
	// -1 = unlimited. Shared-cache hits and adopted flights are free.
	budget  int
	queries int
	agg     exec.Stats
	closed  bool
	// jobs tracks the session's non-terminal v1 jobs: closing the session
	// cancels them (coded session_closed) instead of orphaning a running
	// statement on the shared engine.
	jobs map[string]*Job
}

// addJob registers an active job with its session.
func (s *Session) addJob(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jobs == nil {
		s.jobs = make(map[string]*Job)
	}
	s.jobs[j.id] = j
}

// removeJob drops a terminal job from the active set.
func (s *Session) removeJob(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// SessionInfo is a session's reportable state.
type SessionInfo struct {
	ID      string `json:"id"`
	Queries int    `json:"queries"`
	// BudgetLeft is the remaining comparison budget (-1 = unlimited).
	BudgetLeft int        `json:"budget_left"`
	Stats      exec.Stats `json:"stats"`
}

// Info snapshots the session.
func (s *Session) Info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionInfo{ID: s.id, Queries: s.queries, BudgetLeft: s.budget, Stats: s.agg}
}

// budgetLeft reads the remaining comparison budget (-1 = unlimited)
// without reserving anything — the admission forecast's input.
func (s *Session) budgetLeft() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budget
}

// reserveBudget atomically takes the whole remaining comparison budget
// for one statement (0 = unlimited), or errors when it is already spent.
// Reserving everything up front means concurrent statements on one
// session can never overspend in aggregate: the second reservation sees
// zero and is refused until the first settles and refunds what it did
// not pay.
func (s *Session) reserveBudget() (int, *Error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errf(CodeUnknownSession, "session %s is closed", s.id)
	}
	switch {
	case s.budget < 0:
		return 0, nil // unlimited
	case s.budget == 0:
		return 0, errf(CodeBudgetExhausted,
			"session %s has no crowd-comparison budget left", s.id)
	default:
		reserved := s.budget
		s.budget = 0
		return reserved, nil
	}
}

// settle records a finished statement's stats and refunds the part of
// its reservation the statement did not pay the crowd for.
func (s *Session) settle(st exec.Stats, reserved int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	s.agg = s.agg.Add(st)
	if reserved > 0 && s.budget >= 0 {
		if unused := reserved - st.Comparisons; unused > 0 {
			s.budget += unused
		}
	}
}

// newSessionID formats the n-th session's identifier.
func newSessionID(n int64) string { return fmt.Sprintf("s%06d", n) }
