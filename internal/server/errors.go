package server

import (
	"fmt"
	"net/http"
)

// Code classifies a query-service error so clients can react without
// parsing message text. Codes are stable wire contract; messages are not.
type Code string

const (
	// CodeParse: the statement did not parse (or is unsupported CrowdSQL).
	CodeParse Code = "parse_error"
	// CodeBudgetExhausted: the session spent its crowd-comparison budget.
	CodeBudgetExhausted Code = "budget_exhausted"
	// CodeBusy: admission control rejected the query (concurrency slots
	// full or the task manager's submission queue is too deep).
	CodeBusy Code = "server_busy"
	// CodeShuttingDown: the server is draining and takes no new queries.
	CodeShuttingDown Code = "shutting_down"
	// CodeUnknownSession: the request named a session that does not exist
	// (never created, or already closed).
	CodeUnknownSession Code = "unknown_session"
	// CodeTooManySessions: the session cap is reached.
	CodeTooManySessions Code = "too_many_sessions"
	// CodeInternal: execution failed after admission (storage, platform,
	// or engine errors).
	CodeInternal Code = "internal"
	// CodeUnknownJob: the request named a job id that does not exist (or
	// was evicted by the finished-job retention cap).
	CodeUnknownJob Code = "unknown_job"
	// CodeCancelled: the job was cancelled by a client DELETE before it
	// completed.
	CodeCancelled Code = "cancelled"
	// CodeSessionClosed: the job's session was closed while the query was
	// in flight; the job fails with this code (its crowd work already
	// paid for settles, nothing new is posted).
	CodeSessionClosed Code = "session_closed"
	// CodeUnsupportedVersion: the wire client requested a protocol
	// version this server does not speak.
	CodeUnsupportedVersion Code = "unsupported_version"
	// CodeInterrupted: a server restart cut the job short and its script
	// could not be resumed (it contains writes, or its session did not
	// survive the restart). Rows streamed before the restart are retained.
	CodeInterrupted Code = "interrupted"
)

// Error is a coded query-service error.
type Error struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// HTTPStatus maps the code to its HTTP response status.
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeParse, CodeUnknownSession:
		return http.StatusBadRequest
	case CodeUnknownJob:
		return http.StatusNotFound
	case CodeBudgetExhausted:
		return http.StatusTooManyRequests
	case CodeBusy, CodeShuttingDown:
		return http.StatusServiceUnavailable
	case CodeTooManySessions:
		return http.StatusTooManyRequests
	case CodeCancelled, CodeSessionClosed, CodeInterrupted:
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func errf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}
