package server

// Observability surface tests: /metrics exposition validity and
// monotonicity, the per-job trace endpoint (full HIT-group lifecycle),
// the enriched healthz JSON, and concurrent scrape safety (run with
// -race).

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"crowddb/internal/obs"
)

// scrapeMetrics fetches /metrics and parses every sample line into a
// map keyed by the full series name (labels included).
func scrapeMetrics(t *testing.T, url string) (string, map[string]float64) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	vals := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed sample value in %q: %v", line, err)
		}
		vals[line[:i]] = v
	}
	return string(body), vals
}

// runJobWait submits sql as a job and blocks until it finishes.
func runJobWait(t *testing.T, srv *Server, sql string) *Job {
	t.Helper()
	job, serr := srv.StartJob("", sql)
	if serr != nil {
		t.Fatalf("start job: %v", serr)
	}
	state, err := job.waitTerminal(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if state != JobDone {
		t.Fatalf("job state %s (err %v)", state, job.Err())
	}
	return job
}

func TestMetricsEndpoint(t *testing.T) {
	eng := pairEngine(t, 61, 4)
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	runJobWait(t, srv, "SELECT id FROM Pair WHERE a ~= b")
	body, vals := scrapeMetrics(t, ts.URL)

	// The exposition is line-valid Prometheus text: every sample line
	// matches name{labels}? value, and # TYPE precedes its samples.
	sample := regexp.MustCompile(`^[a-z][a-z0-9_]*(\{[^}]*\})? (\+Inf|-?[0-9.e+-]+)$`)
	typed := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("invalid sample line %q", line)
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, suf); b != name && typed[b] {
				base = b
			}
		}
		if !typed[base] {
			t.Errorf("sample %q precedes its # TYPE line", line)
		}
	}

	// The cross-stack families the issue pins are all present.
	for _, fam := range []string{
		"crowddb_statements_total",
		"crowddb_crowd_comparisons_total",
		"crowddb_crowd_spend_cents_total",
		"crowddb_cache_hits_total",
		"crowddb_cache_misses_total",
		"crowddb_wal_fsync_seconds",
		"crowddb_mvcc_retained_versions",
		"crowddb_mvcc_gc_reclaimed_versions_total",
		"crowddb_taskmgr_group_roundtrip_seconds",
		"crowddb_taskmgr_inflight_groups",
		"crowddb_jobs_total",
		"crowddb_jobs_streamed_rows_total",
		"crowddb_server_uptime_seconds",
	} {
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}

	// The crowd query actually moved the needles.
	if vals[`crowddb_statements_total{kind="select"}`] < 1 {
		t.Errorf("select statements counter: %v", vals[`crowddb_statements_total{kind="select"}`])
	}
	if vals["crowddb_crowd_comparisons_total"] < 1 || vals["crowddb_crowd_spend_cents_total"] <= 0 {
		t.Errorf("crowd counters: comparisons=%v cents=%v",
			vals["crowddb_crowd_comparisons_total"], vals["crowddb_crowd_spend_cents_total"])
	}
	if vals[`crowddb_jobs_total{state="done"}`] < 1 {
		t.Errorf("done jobs counter: %v", vals[`crowddb_jobs_total{state="done"}`])
	}
	if vals["crowddb_jobs_streamed_rows_total"] < 1 {
		t.Errorf("streamed rows counter: %v", vals["crowddb_jobs_streamed_rows_total"])
	}
	// Histogram bucket consistency: +Inf cumulative bucket == _count.
	for _, h := range []string{
		"crowddb_taskmgr_group_roundtrip_seconds",
		"crowddb_wal_fsync_seconds",
	} {
		inf, count := vals[h+`_bucket{le="+Inf"}`], vals[h+"_count"]
		if inf != count {
			t.Errorf("%s: +Inf bucket %v != count %v", h, inf, count)
		}
	}
	if vals["crowddb_taskmgr_group_roundtrip_seconds_count"] < 1 {
		t.Errorf("roundtrip histogram recorded no groups")
	}

	// Counters are monotone across another query (cached → same
	// comparisons, but statements strictly grow).
	runJobWait(t, srv, "SELECT id FROM Pair WHERE a ~= b")
	_, vals2 := scrapeMetrics(t, ts.URL)
	for _, c := range []string{
		`crowddb_statements_total{kind="select"}`,
		"crowddb_crowd_comparisons_total",
		"crowddb_crowd_spend_cents_total",
		"crowddb_cache_hits_total",
		"crowddb_jobs_streamed_rows_total",
	} {
		if vals2[c] < vals[c] {
			t.Errorf("counter %s regressed: %v -> %v", c, vals[c], vals2[c])
		}
	}
	if vals2[`crowddb_statements_total{kind="select"}`] != vals[`crowddb_statements_total{kind="select"}`]+1 {
		t.Errorf("select statements did not advance by one: %v -> %v",
			vals[`crowddb_statements_total{kind="select"}`], vals2[`crowddb_statements_total{kind="select"}`])
	}
	if vals2["crowddb_cache_hits_total"] <= vals["crowddb_cache_hits_total"] {
		t.Errorf("repeat query should hit the comparison cache: %v -> %v",
			vals["crowddb_cache_hits_total"], vals2["crowddb_cache_hits_total"])
	}
}

func TestJobTraceEndpoint(t *testing.T) {
	eng := pairEngine(t, 62, 4)
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	job := runJobWait(t, srv, "SELECT id FROM Pair WHERE a ~= b")
	if got := job.Info().TraceID; got != job.ID() {
		t.Fatalf("job trace_id %q, want %q", got, job.ID())
	}
	resp, err := http.Get(ts.URL + "/v1/queries/" + job.ID() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	var tj obs.TraceJSON
	if err := json.NewDecoder(resp.Body).Decode(&tj); err != nil {
		t.Fatal(err)
	}
	if tj.TraceID != job.ID() || tj.Spans < 4 {
		t.Fatalf("trace header: %+v", tj)
	}
	// The span taxonomy covers the whole statement lifecycle.
	for _, prefix := range []string{"parse", "statement", "optimize", "snapshot", "execute", "op:"} {
		if len(tj.FindSpans(prefix)) == 0 {
			t.Errorf("no %q span in trace", prefix)
		}
	}
	// A HIT group's full post→quorum lifecycle is on its crowd span.
	crowd := tj.FindSpans("crowd:")
	if len(crowd) == 0 {
		t.Fatal("no crowd spans in trace")
	}
	var posted *obs.SpanJSON
	for _, sp := range crowd {
		if sp.Attrs["posted_at"] != "" {
			posted = sp
			break
		}
	}
	if posted == nil {
		t.Fatalf("no crowd span carries scheduler telemetry: %+v", crowd[0])
	}
	for _, key := range []string{"queued", "posted_at", "resolved_at", "roundtrip", "answers", "quorum", "role"} {
		if _, ok := posted.Attrs[key]; !ok {
			t.Errorf("crowd span missing %q attr: %v", key, posted.Attrs)
		}
	}
	if n, _ := strconv.Atoi(posted.Attrs["answers"]); n < 1 {
		t.Errorf("crowd span answers = %q, want >= 1", posted.Attrs["answers"])
	}
	if n, _ := strconv.Atoi(posted.Attrs["quorum"]); n < 1 {
		t.Errorf("crowd span quorum = %q, want >= 1", posted.Attrs["quorum"])
	}
}

func TestTraceUnknownAndEvictedJobs(t *testing.T) {
	eng := pairEngine(t, 63, 1)
	srv := New(eng, Config{MaxJobs: 1})
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	first := runJobWait(t, srv, "SHOW TABLES")
	runJobWait(t, srv, "SHOW TABLES") // retention cap 1 evicts the first

	for _, id := range []string{"zzz", first.ID()} {
		resp, err := http.Get(ts.URL + "/v1/queries/" + id + "/trace")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("trace %s status %d, want 404", id, resp.StatusCode)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == nil || er.Error.Code != CodeUnknownJob {
			t.Fatalf("trace %s body: %s", id, body)
		}
	}
}

func TestHealthzJSON(t *testing.T) {
	eng := pairEngine(t, 64, 1)
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	if _, serr := srv.CreateSession(0); serr != nil {
		t.Fatal(serr)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Version != Version || hz.Shards < 1 ||
		hz.ActiveSessions != 1 || hz.UptimeSeconds < 0 {
		t.Fatalf("healthz body: %+v", hz)
	}
}

// TestMetricsConcurrency hammers queries and scrapes together; run under
// -race it proves the scrape path takes no unsynchronized reads.
func TestMetricsConcurrency(t *testing.T) {
	eng := pairEngine(t, 65, 2)
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, serr := srv.Query("", "SELECT id FROM Pair"); serr != nil {
					t.Error(serr)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				scrapeMetrics(t, ts.URL)
			}
		}()
	}
	wg.Wait()
}
