package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crowddb/internal/workload"
)

// waitState polls a job to a terminal state with a test deadline.
func waitState(t *testing.T, job *Job) JobState {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	state, err := job.waitTerminal(ctx)
	if err != nil {
		t.Fatalf("job %s stuck in %s: %v", job.ID(), state, err)
	}
	return state
}

// TestJobLifecycle walks the happy path: queued/running -> done, rows
// streamed, stats and spend reported on the resource.
func TestJobLifecycle(t *testing.T) {
	eng := pairEngine(t, 51, 4)
	srv := New(eng, Config{})
	sess, serr := srv.CreateSession(-1)
	if serr != nil {
		t.Fatal(serr)
	}

	job, serr := srv.StartJob(sess.ID(), "SELECT id FROM Pair WHERE a ~= b")
	if serr != nil {
		t.Fatal(serr)
	}
	if st := waitState(t, job); st != JobDone {
		t.Fatalf("state = %s, err = %v", st, job.Err())
	}
	info := job.Info()
	if info.RowsEmitted != 4 || len(info.Columns) != 1 || info.Columns[0] != "id" {
		t.Errorf("job info = %+v", info)
	}
	if info.Stats.Comparisons != 4 || info.SpentCents <= 0 || info.ActualCents != info.SpentCents {
		t.Errorf("spend accounting: %+v", info)
	}
	if info.StatementsDone != 1 || info.Error != nil {
		t.Errorf("job info = %+v", info)
	}

	// The finished resource stays pollable.
	again, serr := srv.Job(job.ID())
	if serr != nil || again.State() != JobDone {
		t.Fatalf("retained job: %v %v", again, serr)
	}

	// Parse errors are rejected synchronously, never becoming jobs.
	if _, serr := srv.StartJob(sess.ID(), "SELEC nope"); serr == nil || serr.Code != CodeParse {
		t.Fatalf("parse: got %v, want %s", serr, CodeParse)
	}
}

// TestJobRowsStreamNDJSON exercises GET /v1/queries/{id}/rows end to
// end: rows arrive as JSON arrays, the stream ends with a state trailer.
func TestJobRowsStreamNDJSON(t *testing.T) {
	eng := pairEngine(t, 53, 3)
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/queries", map[string]string{"sql": "SELECT id FROM Pair WHERE a ~= b"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/queries: %d %s", resp.StatusCode, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.State.Terminal() {
		t.Fatalf("submit response: %+v", info)
	}

	rowsResp, err := http.Get(ts.URL + "/v1/queries/" + info.ID + "/rows")
	if err != nil {
		t.Fatal(err)
	}
	defer rowsResp.Body.Close()
	if ct := rowsResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(rowsResp.Body)
	var rows [][]*string
	var trailer struct {
		State JobState `json:"state"`
		Error *Error   `json:"error"`
	}
	sawTrailer := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if line[0] == '[' {
			var row []*string
			if err := json.Unmarshal(line, &row); err != nil {
				t.Fatalf("row line %q: %v", line, err)
			}
			rows = append(rows, row)
			continue
		}
		if err := json.Unmarshal(line, &trailer); err != nil {
			t.Fatalf("trailer %q: %v", line, err)
		}
		sawTrailer = true
	}
	if !sawTrailer || trailer.State != JobDone || trailer.Error != nil {
		t.Fatalf("trailer = %+v (saw %v)", trailer, sawTrailer)
	}
	if len(rows) != 3 {
		t.Fatalf("streamed %d rows, want 3", len(rows))
	}
}

// TestJobRowsStreamSSE checks the SSE framing of the same stream.
func TestJobRowsStreamSSE(t *testing.T) {
	eng := pairEngine(t, 59, 2)
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	_, body := postJSON(t, ts.URL+"/v1/queries", map[string]string{"sql": "SELECT id FROM Pair"})
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/queries/"+info.ID+"/rows", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck // test buffer
	out := buf.String()
	if strings.Count(out, "event: row") != 2 || !strings.Contains(out, "event: end") {
		t.Fatalf("SSE stream:\n%s", out)
	}
	if !strings.Contains(out, `"state":"done"`) {
		t.Fatalf("SSE end event missing state:\n%s", out)
	}
}

// pairStrings returns the pairEngine's i-th (here: only) comparison
// pair, so tests can pose as a foreign session's in-flight leader.
func pairStrings(t *testing.T, seed int64, n int) (l, r string) {
	t.Helper()
	cs := workload.NewCompanies(n, seed)
	c := cs.List[0]
	return c.Canonical, c.Variants[len(c.Variants)-1]
}

// TestCancelUnblocksCrowdWait: DELETE on a job parked behind a foreign
// in-flight comparison must move it to cancelled promptly and leave the
// singleflight table claim-free (only the foreign leader remains until
// it abandons).
func TestCancelUnblocksCrowdWait(t *testing.T) {
	eng := pairEngine(t, 61, 1)
	srv := New(eng, Config{})
	sess, serr := srv.CreateSession(-1)
	if serr != nil {
		t.Fatal(serr)
	}
	l, r := pairStrings(t, 61, 1)
	leader := eng.Cache().ClaimEqual("", l, r)
	if !leader.Leader {
		t.Fatal("test setup: expected to lead the claim")
	}

	job, jerr := srv.StartJob(sess.ID(), "SELECT id FROM Pair WHERE a ~= b")
	if jerr != nil {
		t.Fatal(jerr)
	}
	time.Sleep(30 * time.Millisecond)
	if st := job.State(); st.Terminal() {
		t.Fatalf("job finished (%s) while its comparison was foreign-owned", st)
	}

	if _, cerr := srv.CancelJob(job.ID()); cerr != nil {
		t.Fatal(cerr)
	}
	if st := waitState(t, job); st != JobCancelled {
		t.Fatalf("state = %s, err = %v", st, job.Err())
	}
	// Only the foreign leader's flight remains; abandoning it leaves the
	// table claim-free.
	if n := eng.Cache().InFlight(); n != 1 {
		t.Errorf("in-flight claims after cancel = %d, want 1 (the foreign leader)", n)
	}
	leader.Abandon()
	if n := eng.Cache().InFlight(); n != 0 {
		t.Errorf("in-flight claims after abandon = %d, want 0", n)
	}
	// No crowd work was posted by the cancelled follower.
	if st := eng.Tasks().Stats(); st.GroupsPosted != 0 {
		t.Errorf("cancelled job posted %d groups", st.GroupsPosted)
	}
}

// TestCloseSessionFailsJobsSessionClosed: DELETE /session with a query
// in flight cancels its job with the coded session_closed failure.
func TestCloseSessionFailsJobsSessionClosed(t *testing.T) {
	eng := pairEngine(t, 67, 1)
	srv := New(eng, Config{})
	sess, serr := srv.CreateSession(-1)
	if serr != nil {
		t.Fatal(serr)
	}
	l, r := pairStrings(t, 67, 1)
	leader := eng.Cache().ClaimEqual("", l, r)
	if !leader.Leader {
		t.Fatal("test setup: expected to lead the claim")
	}
	defer leader.Abandon()

	job, jerr := srv.StartJob(sess.ID(), "SELECT id FROM Pair WHERE a ~= b")
	if jerr != nil {
		t.Fatal(jerr)
	}
	time.Sleep(30 * time.Millisecond)
	if cerr := srv.CloseSession(sess.ID()); cerr != nil {
		t.Fatal(cerr)
	}
	if st := waitState(t, job); st != JobFailed {
		t.Fatalf("state = %s", st)
	}
	if err := job.Err(); err == nil || err.Code != CodeSessionClosed {
		t.Fatalf("error = %v, want %s", err, CodeSessionClosed)
	}
}

// TestLegacyQueryShimMatchesDirect: the POST /query shim must return the
// same JSON a direct engine render would — same rows, nulls, stats.
func TestLegacyQueryShimMatchesDirect(t *testing.T) {
	eng := pairEngine(t, 71, 3)
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/query", map[string]string{"sql": "SELECT id, a FROM Pair WHERE a ~= b"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: %d %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	// Row content is crowd-answered (seed-dependent); the shape and the
	// paid-comparison accounting are the contract.
	if len(qr.Rows) == 0 || len(qr.Columns) != 2 || qr.Stats.Comparisons != 3 {
		t.Fatalf("shim response: %s", body)
	}
	// Multi-statement script: only the last statement's result renders.
	resp, body = postJSON(t, ts.URL+"/query",
		map[string]string{"sql": "SELECT id FROM Pair; SELECT a FROM Pair WHERE id = 0;"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("script: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Columns) != 1 || qr.Columns[0] != "a" || len(qr.Rows) != 1 {
		t.Fatalf("script shim must render the last statement only: %s", body)
	}
}

// TestWireProtocolV2Jobs covers the version handshake and the jobs shim
// commands over TCP.
func TestWireProtocolV2Jobs(t *testing.T) {
	eng := pairEngine(t, 73, 2)
	srv := New(eng, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeWire(ln) //nolint:errcheck // closed by test end
	defer ln.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	greeting, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(greeting, "# crowddb wire/2 session=") {
		t.Fatalf("greeting = %q, %v", greeting, err)
	}
	send := func(line string) {
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatal(err)
		}
	}
	readBlock := func() []string {
		var lines []string
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("read: %v (so far %v)", err, lines)
			}
			line = strings.TrimRight(line, "\n")
			if line == "." {
				return lines
			}
			lines = append(lines, line)
			if strings.HasPrefix(line, "ERR ") {
				return lines
			}
		}
	}

	// Unknown protocol version -> coded refusal.
	send("\\proto 99")
	if block := readBlock(); !strings.HasPrefix(block[0], "ERR unsupported_version ") {
		t.Fatalf("proto 99: %v", block)
	}
	// Downgrade to wire/1: job commands are refused.
	send("\\proto 1")
	if block := readBlock(); block[0] != "OK 0" {
		t.Fatalf("proto 1: %v", block)
	}
	send("\\job SELECT id FROM Pair;")
	if block := readBlock(); !strings.HasPrefix(block[0], "ERR unsupported_version ") {
		t.Fatalf("job on wire/1: %v", block)
	}
	// Back to wire/2: submit, poll to done, cancel is idempotent.
	send("\\proto 2")
	if block := readBlock(); block[0] != "OK 0" {
		t.Fatalf("proto 2: %v", block)
	}
	send("\\job SELECT id FROM Pair WHERE a ~= b;")
	block := readBlock()
	if block[0] != "OK 1" || !strings.HasPrefix(block[1], "# job\t") {
		t.Fatalf("\\job: %v", block)
	}
	jobID := strings.SplitN(block[2], "\t", 2)[0]
	if !strings.HasPrefix(jobID, "j") {
		t.Fatalf("job id %q", jobID)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		send("\\poll " + jobID)
		block = readBlock()
		if block[0] != "OK 1" {
			t.Fatalf("\\poll: %v", block)
		}
		state := strings.SplitN(block[2], "\t", 3)[1]
		if state == "done" {
			break
		}
		if state == "failed" || state == "cancelled" {
			t.Fatalf("job ended %s: %v", state, block)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %v", block)
		}
		time.Sleep(5 * time.Millisecond)
	}
	send("\\cancel " + jobID)
	block = readBlock()
	if block[0] != "OK 1" || !strings.Contains(block[2], "done") {
		t.Fatalf("\\cancel after done must be a no-op: %v", block)
	}
	// Unknown job id -> coded error.
	send("\\poll j999999")
	if block = readBlock(); !strings.HasPrefix(block[0], "ERR unknown_job ") {
		t.Fatalf("unknown job: %v", block)
	}
	// Synchronous statements still work on wire/2 (the jobs shim).
	send("SELECT id FROM Pair;")
	if block = readBlock(); block[0] != "OK 2" {
		t.Fatalf("sync statement: %v", block)
	}
}
