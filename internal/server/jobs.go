package server

// The query-job subsystem: the v1 API's resource model. A job is one
// submitted CrowdSQL script moving through the lifecycle
//
//	queued -> running -> done | failed | cancelled
//
// Rows stream out of the engine's RowSink seam into the job's buffer as
// operators produce them, so clients can consume partial results while
// the crowd is still working; cancellation propagates through the
// statement context into the crowd operators (no new HIT groups are
// posted, queued submissions are withdrawn, paid work settles against
// the session budget). Both legacy surfaces — POST /query and the TCP
// wire protocol — execute as thin shims over jobs.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"crowddb/internal/core"
	"crowddb/internal/exec"
	"crowddb/internal/obs"
	"crowddb/internal/parser"
	"crowddb/internal/plan"
)

// JobState is a job's lifecycle position.
type JobState string

// The job lifecycle: queued (admission pending), running, and the
// terminal states. Interrupted is reached only across a restart: the
// recovery path found the job mid-flight in the journal and could not
// resume its script.
const (
	JobQueued      JobState = "queued"
	JobRunning     JobState = "running"
	JobDone        JobState = "done"
	JobFailed      JobState = "failed"
	JobCancelled   JobState = "cancelled"
	JobInterrupted JobState = "interrupted"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled || s == JobInterrupted
}

// Job is one asynchronous query execution. All exported access goes
// through methods; the zero value is not usable (Server.StartJob builds
// them).
type Job struct {
	id        string
	sql       string
	sess      *Session
	sessionID string // "" = anonymous one-shot session
	price     func(exec.Stats) float64
	// trace is the job's span tree: one trace for the whole script,
	// threaded through every statement, finished at retirement. Nil when
	// the engine runs with observability disabled.
	trace      *obs.Trace
	rowsMetric *obs.Counter

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	notify chan struct{} // closed and replaced on every visible change
	state  JobState
	err    *Error
	// cancelCode/cancelMsg record why cancellation was requested, so the
	// runner can distinguish a client DELETE (-> cancelled) from a closed
	// session (-> failed with session_closed).
	cancelCode Code
	cancelMsg  string

	// Result accumulation. rows holds every streamed row (rendered once,
	// shared by the SSE/NDJSON streamers and the legacy shims);
	// lastStmtStart marks where the most recent statement's result set
	// begins (the legacy shims return only the last statement's rows).
	columns       []string
	rows          [][]*string
	lastStmtStart int
	lastColumns   []string
	lastStats     exec.Stats
	lastPredicted plan.Cost
	lastActual    float64
	affected      int
	plan          string
	warnings      []string

	stmtsDone     int
	settledStats  exec.Stats
	settledCents  float64
	progressStats exec.Stats // live snapshot of the running statement
	// recovered counts journal-recovered rows already in the buffer when a
	// restart resumes this job: the re-executed script's first `recovered`
	// sink emissions are suppressed instead of buffered (and journaled)
	// again, so reconnecting clients see neither duplicates nor gaps.
	recovered int
	// admPredicted is the optimizer's cost forecast taken at admission
	// (cents; <0 = no forecast) — settled against the actual spend when
	// the job retires, for the /stats admission-accuracy report.
	admPredicted float64
	// snapshotTS is the MVCC snapshot timestamp the most recent SELECT
	// pinned: every row that statement streams is the database as of this
	// commit timestamp, regardless of writes landing while the crowd works.
	snapshotTS int64
}

// JobInfo is a job's reportable state (the v1 job resource).
type JobInfo struct {
	ID      string   `json:"id"`
	State   JobState `json:"state"`
	Session string   `json:"session,omitempty"`
	// Columns names the (latest) result set's columns once known.
	Columns []string `json:"columns,omitempty"`
	// RowsEmitted counts rows streamed so far across the whole script.
	RowsEmitted int      `json:"rows_emitted"`
	Affected    int      `json:"affected,omitempty"`
	Plan        string   `json:"plan,omitempty"`
	Warnings    []string `json:"warnings,omitempty"`
	// StatementsDone counts completed statements of the script.
	StatementsDone int `json:"statements_done"`
	// Stats aggregates crowd activity over completed statements plus the
	// running statement's latest progress snapshot.
	Stats exec.Stats `json:"stats"`
	// PredictedCents/PredictedSeconds carry the cost model's forecast for
	// the last compiled statement; SpentCents is the crowd spend committed
	// so far (settled statements + the running statement's progress).
	PredictedCents   float64 `json:"predicted_cents,omitempty"`
	PredictedSeconds float64 `json:"predicted_seconds,omitempty"`
	SpentCents       float64 `json:"spent_cents"`
	ActualCents      float64 `json:"actual_cents,omitempty"`
	// SnapshotTS is the commit timestamp the latest SELECT's MVCC snapshot
	// pinned; its streamed rows are the database as of that instant.
	SnapshotTS int64 `json:"snapshot_ts,omitempty"`
	// TraceID names the job's span tree at GET /v1/queries/{id}/trace
	// (empty when the engine traces nothing).
	TraceID string `json:"trace_id,omitempty"`
	Error   *Error `json:"error,omitempty"`
}

// newJobID formats the n-th job's identifier.
func newJobID(n int64) string { return fmt.Sprintf("j%06d", n) }

// broadcastLocked wakes every waiter; callers hold j.mu.
func (j *Job) broadcastLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// ID returns the job identifier.
func (j *Job) ID() string { return j.id }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Info snapshots the job resource.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:             j.id,
		State:          j.state,
		Session:        j.sessionID,
		Columns:        j.columns,
		RowsEmitted:    len(j.rows),
		Affected:       j.affected,
		Plan:           j.plan,
		Warnings:       j.warnings,
		StatementsDone: j.stmtsDone,
		Stats:          j.settledStats.Add(j.progressStats),
		SpentCents:     j.settledCents + j.price(j.progressStats),
		SnapshotTS:     j.snapshotTS,
		TraceID:        j.trace.ID(),
		Error:          j.err,
	}
	if !j.lastPredicted.IsUnbounded() {
		info.PredictedCents = j.lastPredicted.Cents
		info.PredictedSeconds = j.lastPredicted.Seconds
	}
	if j.state == JobDone {
		info.ActualCents = j.lastActual
	}
	return info
}

// renderRow renders one engine row into the wire cell form (nil =
// JSON null / wire \N).
func renderRow(row exec.Row) []*string {
	cells := make([]*string, len(row))
	for i, v := range row {
		if v.IsUnknown() {
			continue
		}
		rendered := v.String()
		cells[i] = &rendered
	}
	return cells
}

// pushRow is the engine sink: it renders and buffers one streamed row.
func (j *Job) pushRow(row exec.Row) error {
	return j.pushCells(renderRow(row))
}

// pushCells buffers one already-rendered row and wakes the streamers.
func (j *Job) pushCells(cells []*string) error {
	j.rowsMetric.Inc()
	j.mu.Lock()
	j.rows = append(j.rows, cells)
	j.broadcastLocked()
	j.mu.Unlock()
	return nil
}

// startResultSet begins a SELECT's result set (engine OnSchema hook).
func (j *Job) startResultSet(cols []string) {
	j.mu.Lock()
	j.columns = cols
	j.lastStmtStart = len(j.rows)
	j.broadcastLocked()
	j.mu.Unlock()
}

// noteSnapshot records the MVCC snapshot timestamp the running SELECT
// pinned (engine OnSnapshot hook; runs on the executing goroutine).
func (j *Job) noteSnapshot(ts int64) {
	j.mu.Lock()
	j.snapshotTS = ts
	j.broadcastLocked()
	j.mu.Unlock()
}

// noteProgress stores the running statement's latest stats snapshot
// (engine Progress hook; runs on the executing goroutine).
func (j *Job) noteProgress(st exec.Stats) {
	j.mu.Lock()
	j.progressStats = st
	j.broadcastLocked()
	j.mu.Unlock()
}

// completeStmt folds one finished statement into the job.
func (j *Job) completeStmt(res *core.Result, st exec.Stats) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.stmtsDone++
	j.settledStats = j.settledStats.Add(st)
	j.settledCents += res.ActualCents
	j.progressStats = exec.Stats{}
	j.lastStats = st
	j.lastPredicted = res.Predicted
	j.lastActual = res.ActualCents
	j.affected = res.Affected
	j.plan = res.Plan
	j.warnings = res.Warnings
	j.lastColumns = res.Columns
	if res.Columns == nil {
		// Non-SELECT: the "last result set" is empty from here.
		j.lastStmtStart = len(j.rows)
	}
	j.broadcastLocked()
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state JobState, err *Error) {
	j.cancel() // release the context regardless of how we got here
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.err = err
	// The running statement's progress is settled (or lost) by now.
	j.settledStats = j.settledStats.Add(j.progressStats)
	j.settledCents += j.price(j.progressStats)
	j.progressStats = exec.Stats{}
	j.broadcastLocked()
}

// finishInterrupted resolves a job whose statement context fired: a
// client cancellation yields the cancelled state, a closed session the
// coded session_closed failure, and an expired drain deadline the coded
// shutting_down failure.
func (j *Job) finishInterrupted() {
	j.mu.Lock()
	code, msg := j.cancelCode, j.cancelMsg
	j.mu.Unlock()
	switch code {
	case CodeSessionClosed:
		j.finish(JobFailed, errf(CodeSessionClosed, "%s", msg))
	case CodeShuttingDown:
		j.finish(JobFailed, errf(CodeShuttingDown, "%s", msg))
	default:
		j.finish(JobCancelled, nil)
	}
}

// requestCancel asks a non-terminal job to stop. The statement context
// fires immediately; the runner settles paid work and records the
// terminal state.
func (j *Job) requestCancel(code Code, msg string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	if j.cancelCode == "" {
		j.cancelCode = code
		j.cancelMsg = msg
	}
	j.mu.Unlock()
	j.cancel()
}

// waitTerminal blocks until the job reaches a terminal state or ctx
// fires, and returns the final state.
func (j *Job) waitTerminal(ctx context.Context) (JobState, error) {
	for {
		j.mu.Lock()
		state, notify := j.state, j.notify
		j.mu.Unlock()
		if state.Terminal() {
			return state, nil
		}
		select {
		case <-notify:
		case <-ctx.Done():
			return state, ctx.Err()
		}
	}
}

// rowsFrom snapshots the rows buffered from index n on, plus the state
// and a channel that signals the next change — the streaming endpoints'
// poll step.
func (j *Job) rowsFrom(n int) (batch [][]*string, state JobState, notify <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n < len(j.rows) {
		batch = j.rows[n:len(j.rows):len(j.rows)]
	}
	return batch, j.state, j.notify
}

// lastResult snapshots the fields the legacy shims render: the final
// statement's columns, rendered rows, and summary numbers.
func (j *Job) lastResult() (cols []string, rows [][]*string, affected int, planText string,
	warnings []string, st exec.Stats, predicted plan.Cost, actual float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastColumns, j.rows[j.lastStmtStart:len(j.rows):len(j.rows)], j.affected,
		j.plan, j.warnings, j.lastStats, j.lastPredicted, j.lastActual
}

// Err returns the job's terminal error, if any.
func (j *Job) Err() *Error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// terminalError maps a non-done terminal state to the coded error the
// legacy synchronous shims (POST /query, wire statements) return.
func (j *Job) terminalError() *Error {
	if err := j.Err(); err != nil {
		return err
	}
	return errf(CodeCancelled, "job %s was cancelled", j.ID())
}

// ---------------------------------------------------------------------------
// Server-side job management

// StartJob submits a CrowdSQL script as an asynchronous job on behalf of
// a session (sessionID empty = anonymous one-shot session). Parse errors
// are rejected synchronously; everything later — admission, budget,
// execution — is reported through the job resource.
func (s *Server) StartJob(sessionID, sql string) (*Job, *Error) {
	sess, serr := s.resolveSession(sessionID)
	if serr != nil {
		s.countRejected(serr)
		return nil, serr
	}
	return s.startJobForSession(sess, sessionID, sql)
}

// startJobForSession is StartJob for an already-resolved session. The
// wire shim calls it directly with its connection session.
func (s *Server) startJobForSession(sess *Session, sessionID, sql string) (*Job, *Error) {
	parseStart := time.Now()
	stmts, err := parser.ParseAll(sql)
	if err != nil {
		s.countError()
		return nil, errf(CodeParse, "%v", err)
	}
	parseEnd := time.Now()
	// Budget-aware admission: reject before any HIT could be posted when
	// the optimizer's forecast says the script cannot fit the session's
	// remaining budget. Zero cents have been spent at this point.
	predicted, aerr := s.admitBudget(sess, stmts)
	if aerr != nil {
		s.countRejected(aerr)
		return nil, aerr
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		serr := errf(CodeShuttingDown, "server is shutting down")
		s.countRejected(serr)
		return nil, serr
	}
	s.jobSeq++
	ctx, cancel := context.WithCancel(context.Background())
	job := &Job{
		id:           newJobID(s.jobSeq),
		sql:          sql,
		sess:         sess,
		sessionID:    sessionID,
		price:        s.eng.PriceStats,
		ctx:          ctx,
		cancel:       cancel,
		notify:       make(chan struct{}),
		state:        JobQueued,
		admPredicted: predicted,
	}
	if s.jobs == nil {
		s.jobs = make(map[string]*Job)
	}
	s.jobs[job.id] = job
	s.mu.Unlock()
	s.journalSubmit(job)
	job.rowsMetric = s.mRowsStreamed
	// One trace per job, named by the job id: parsing happened before the
	// id was allocated, so it is stamped with explicit bounds.
	job.trace = s.eng.Tracer().Start(job.id)
	psp := job.trace.SpanAt(nil, "parse", parseStart, parseEnd)
	psp.SetInt("statements", int64(len(stmts)))
	sess.addJob(job)
	go s.runJob(job, stmts)
	return job, nil
}

// Job looks up a job by id.
func (s *Server) Job(id string) (*Job, *Error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, errf(CodeUnknownJob, "unknown job %q", id)
	}
	return job, nil
}

// Jobs snapshots every retained job, newest first.
func (s *Server) Jobs() []JobInfo {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	infos := make([]JobInfo, len(jobs))
	for i, j := range jobs {
		infos[i] = j.Info()
	}
	// Job ids are zero-padded sequentials, so string order is submission
	// order; report newest first.
	sort.Slice(infos, func(a, b int) bool { return infos[a].ID > infos[b].ID })
	return infos
}

// CancelJob requests cancellation of a job and returns its (possibly
// not yet terminal) resource snapshot. Cancelling a finished job is a
// no-op, not an error — DELETE is idempotent.
func (s *Server) CancelJob(id string) (*Job, *Error) {
	job, serr := s.Job(id)
	if serr != nil {
		return nil, serr
	}
	job.requestCancel(CodeCancelled, "cancelled by client")
	return job, nil
}

// runJob executes a job's statements under the server's admission
// control, settling the session budget per statement — including for
// work a cancelled statement already paid for.
func (s *Server) runJob(job *Job, stmts []parser.Statement) {
	if aerr := s.admit(job.ctx); aerr != nil {
		s.countRejected(aerr)
		if job.ctx.Err() != nil {
			job.finishInterrupted()
		} else {
			job.finish(JobFailed, aerr)
		}
		s.retireJob(job)
		return
	}
	defer s.release()
	job.mu.Lock()
	if !job.state.Terminal() {
		job.state = JobRunning
		job.broadcastLocked()
	}
	job.mu.Unlock()
	s.journalRun(job)

	for _, stmt := range stmts {
		if job.ctx.Err() != nil {
			job.finishInterrupted()
			s.retireJob(job)
			return
		}
		reserved, berr := job.sess.reserveBudget()
		if berr != nil {
			s.countError()
			job.finish(JobFailed, berr)
			s.retireJob(job)
			return
		}
		var stmtStats exec.Stats
		opts := core.DefaultExecOpts()
		if reserved > 0 {
			opts.CompareBudget = reserved
		}
		opts.Sink = s.jobSink(job)
		opts.OnSchema = s.jobSchema(job)
		opts.OnStats = func(st exec.Stats) { stmtStats = st }
		opts.Progress = job.noteProgress
		opts.OnSnapshot = job.noteSnapshot
		opts.Trace = job.trace
		res, err := s.eng.ExecStmtCtx(job.ctx, stmt, opts)
		// Settle precisely: the stats observer reports crowd work already
		// paid even when the statement failed or was cancelled, so the
		// session budget refunds exactly the unused reservation.
		job.sess.settle(stmtStats, reserved)
		s.journalBudget(job.sess)
		if err != nil {
			// The stats observer's final numbers supersede the last
			// mid-statement progress snapshot before the job settles.
			job.noteProgress(stmtStats)
			if job.ctx.Err() != nil {
				job.finishInterrupted()
			} else {
				s.countError()
				job.finish(JobFailed, errf(CodeInternal, "%v", err))
			}
			s.retireJob(job)
			return
		}
		job.completeStmt(res, stmtStats)
	}
	s.mu.Lock()
	s.stats.Queries++
	s.mu.Unlock()
	job.finish(JobDone, nil)
	s.retireJob(job)
}

// retireJob moves a terminal job out of its session's active set and
// enforces the finished-job retention cap. The job's trace is sealed
// here — dangling spans close, the slow-query log fires past threshold.
func (s *Server) retireJob(job *Job) {
	s.eng.Tracer().Finish(job.trace)
	s.mJobsByState[job.State()].Inc()
	job.sess.removeJob(job.id)
	s.journalEnd(job)
	s.noteAdmissionOutcome(job)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, job.id)
	maxJobs := s.cfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 256
	}
	for len(s.finished) > maxJobs {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}
