// Package server is crowddbd's concurrent query service: many client
// sessions over one shared CrowdDB engine. Sessions carry their own crowd
// budgets and statistics while sharing the store, catalog, task manager,
// and — crucially — the comparison cache, whose singleflight claims
// collapse identical in-flight crowd questions from concurrent sessions
// into a single HIT group (the crowd is paid once, everyone reads the
// answer).
//
// The service fronts the engine twice: an HTTP/JSON API (POST /query,
// GET /stats, GET /healthz) and a line-oriented TCP wire protocol. Both
// run through the same admission control: a bounded pool of concurrently
// executing queries, plus backpressure keyed off the task manager's
// submission queue — when crowd work is already piling up behind the
// in-flight window, new queries are rejected with a retryable error
// instead of deepening the backlog. Shutdown drains: running queries
// finish, new ones are refused.
package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"crowddb/internal/core"
	"crowddb/internal/exec"
	"crowddb/internal/obs"
	"crowddb/internal/parser"
	"crowddb/internal/storage"
	"crowddb/internal/taskmgr"
)

// Config tunes the query service. The zero value serves with defaults.
type Config struct {
	// MaxSessions caps registered sessions (0 = 64).
	MaxSessions int
	// MaxConcurrent bounds concurrently executing queries (0 = 32).
	MaxConcurrent int
	// MaxQueueDepth is the task-manager submission-queue depth beyond
	// which new queries are rejected as busy (0 = 4x the async window).
	MaxQueueDepth int
	// SessionBudget is the default per-session crowd-comparison budget
	// (0 = unlimited). Sessions may be created with an explicit budget.
	SessionBudget int
	// MaxJobs caps retained finished jobs (0 = 256): terminal job
	// resources stay pollable until the cap evicts the oldest. Active
	// jobs are never evicted.
	MaxJobs int
	// AdmissionHeadroom enables budget-aware admission: a script whose
	// forecast crowd spend exceeds remaining_budget × headroom is
	// rejected with budget_exhausted BEFORE any HIT is posted. 1.0
	// admits only scripts predicted to fit exactly; values above 1
	// re-admit conservatively overpredicted queries. 0 (the default)
	// disables the check.
	AdmissionHeadroom float64
}

// Stats counts the service's activity.
type Stats struct {
	Queries         int64 `json:"queries"`
	Rejected        int64 `json:"rejected"`
	Errors          int64 `json:"errors"`
	SessionsOpened  int64 `json:"sessions_opened"`
	SessionsClosed  int64 `json:"sessions_closed"`
	ActiveSessions  int   `json:"active_sessions"`
	InFlightQueries int   `json:"in_flight_queries"`
	// ActiveJobs counts v1 jobs not yet terminal; RetainedJobs counts
	// every job resource still pollable (active + finished retention).
	ActiveJobs   int  `json:"active_jobs"`
	RetainedJobs int  `json:"retained_jobs"`
	Draining     bool `json:"draining"`
}

// StatsReport is the full /stats payload: service counters plus the
// shared engine's task-manager and comparison-cache state.
type StatsReport struct {
	Server   Stats           `json:"server"`
	Sessions []SessionInfo   `json:"sessions"`
	Cache    exec.CacheStats `json:"cache"`
	// Tasks is nil when the engine runs without a crowd platform.
	Tasks             *taskmgr.Stats `json:"tasks,omitempty"`
	SchedulerInFlight int            `json:"scheduler_in_flight"`
	SchedulerQueued   int            `json:"scheduler_queued"`
	// CostModel is the optimizer's aggregate predicted-vs-actual error,
	// plus the budget-aware admission controller's decision counts and
	// forecast accuracy.
	CostModel CostModelReport `json:"cost_model"`
}

// CostModelReport extends the engine's cost-model accuracy with the
// admission controller's view of it.
type CostModelReport struct {
	core.CostModelStats
	Admission AdmissionStats `json:"admission"`
}

// Server is the concurrent multi-session query service.
type Server struct {
	cfg     Config
	eng     *core.Engine
	slots   chan struct{}
	drainCh chan struct{} // closed when Shutdown begins
	started time.Time

	// Job-path instruments (shared engine registry; nil-safe unset).
	mRowsStreamed *obs.Counter
	mJobsByState  map[JobState]*obs.Counter

	mu       sync.Mutex
	sessions map[string]*Session
	seq      int64
	jobs     map[string]*Job
	jobSeq   int64
	finished []string // terminal job ids, oldest first (retention FIFO)
	draining bool
	inflight int
	stats    Stats
	adm      AdmissionStats

	// journal is the durable jobs log (nil until EnableJournal): job
	// lifecycle, emitted rows, and budget movements survive restarts.
	// Guarded by jmu, not mu — appends happen while mu is held.
	jmu     sync.Mutex
	journal *storage.RecordLog

	active sync.WaitGroup

	lnMu      sync.Mutex
	listeners []interface{ Close() error } // closed when Shutdown begins
	postDrain []interface{ Close() error } // closed after the drain completes
}

// New assembles a server over an engine.
func New(eng *core.Engine, cfg Config) *Server {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 32
	}
	if cfg.MaxQueueDepth <= 0 {
		window := 8
		if t := eng.Tasks(); t != nil && t.Config().MaxInFlight > 0 {
			window = t.Config().MaxInFlight
		}
		cfg.MaxQueueDepth = 4 * window
	}
	s := &Server{
		cfg:      cfg,
		eng:      eng,
		slots:    make(chan struct{}, cfg.MaxConcurrent),
		drainCh:  make(chan struct{}),
		started:  time.Now(),
		sessions: make(map[string]*Session),
		jobs:     make(map[string]*Job),
	}
	s.registerMetrics()
	return s
}

// Engine exposes the shared engine (experiments, tests).
func (s *Server) Engine() *core.Engine { return s.eng }

// CreateSession registers a session. budget caps the session's paid crowd
// comparisons (0 = the configured default, negative = unlimited).
func (s *Server) CreateSession(budget int) (*Session, *Error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errf(CodeShuttingDown, "server is shutting down")
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return nil, errf(CodeTooManySessions, "session limit %d reached", s.cfg.MaxSessions)
	}
	s.seq++
	sess := &Session{id: newSessionID(s.seq), budget: s.effectiveBudget(budget)}
	s.sessions[sess.id] = sess
	s.stats.SessionsOpened++
	s.journalSession(sess)
	return sess, nil
}

// effectiveBudget resolves a requested budget against the default:
// 0 defers to Config.SessionBudget, negative means unlimited, and the
// stored representation is -1 for unlimited.
func (s *Server) effectiveBudget(budget int) int {
	if budget == 0 {
		budget = s.cfg.SessionBudget
	}
	if budget <= 0 {
		return -1
	}
	return budget
}

// Session looks up a registered session.
func (s *Server) Session(id string) (*Session, *Error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, errf(CodeUnknownSession, "unknown session %q", id)
	}
	return sess, nil
}

// CloseSession unregisters a session. Its paid answers stay in the shared
// cache — that is the point. In-flight jobs of the session are cancelled
// and fail with the coded session_closed state: a closed session must not
// leave an orphaned statement running (and paying) on the engine.
func (s *Server) CloseSession(id string) *Error {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return errf(CodeUnknownSession, "unknown session %q", id)
	}
	sess.mu.Lock()
	sess.closed = true
	jobs := make([]*Job, 0, len(sess.jobs))
	for _, j := range sess.jobs {
		jobs = append(jobs, j)
	}
	sess.mu.Unlock()
	delete(s.sessions, id)
	s.stats.SessionsClosed++
	s.mu.Unlock()
	s.journalSessionClose(id)
	for _, j := range jobs {
		j.requestCancel(CodeSessionClosed, fmt.Sprintf("session %s closed with the query in flight", id))
	}
	return nil
}

// Query runs a CrowdSQL script (one or more ;-separated statements) on
// behalf of a session and returns the last statement's result. With
// sessionID empty, an anonymous one-shot session (default budget, not
// registered) is used; the returned id is then empty.
func (s *Server) Query(sessionID, sql string) (*core.Result, *Error) {
	sess, serr := s.resolveSession(sessionID)
	if serr != nil {
		s.countRejected(serr)
		return nil, serr
	}
	return s.querySession(sess, sql)
}

// anonymousSessionID names the unregistered one-shot sessions backing
// session-less queries; their budgets are not journaled.
const anonymousSessionID = "(anonymous)"

func (s *Server) resolveSession(sessionID string) (*Session, *Error) {
	if sessionID == "" {
		// Anonymous one-shot: default budget, not registered, no cap.
		return &Session{id: anonymousSessionID, budget: s.effectiveBudget(0)}, nil
	}
	return s.Session(sessionID)
}

// querySession is Query for an already-resolved session.
func (s *Server) querySession(sess *Session, sql string) (*core.Result, *Error) {
	if err := s.admit(context.Background()); err != nil {
		s.countRejected(err)
		return nil, err
	}
	defer s.release()

	stmts, err := parser.ParseAll(sql)
	if err != nil {
		s.countError()
		return nil, errf(CodeParse, "%v", err)
	}
	var last *core.Result
	for _, stmt := range stmts {
		reserved, berr := sess.reserveBudget()
		if berr != nil {
			s.countError()
			return nil, berr
		}
		opts := core.DefaultExecOpts()
		if reserved > 0 {
			opts.CompareBudget = reserved
		}
		res, err := s.eng.ExecStmtOpts(stmt, opts)
		if err != nil {
			// The reservation is forfeited: a failed statement may have
			// paid the crowd before erroring and the engine cannot report
			// partial spend, so refunding would allow overspend. Erring
			// on the side of the meter keeps budgets a hard cap.
			s.countError()
			return nil, errf(CodeInternal, "%v", err)
		}
		sess.settle(res.Stats, reserved)
		last = res
	}
	s.mu.Lock()
	s.stats.Queries++
	s.mu.Unlock()
	return last, nil
}

// admit runs admission control: refuse while draining, shed load while
// the task manager's submission queue is deep, then take an execution
// slot (blocking briefly is fine — slots turn over at engine speed). A
// queued job whose context fires while parked behind full slots leaves
// the line instead of starting dead.
func (s *Server) admit(ctx context.Context) *Error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errf(CodeShuttingDown, "server is shutting down")
	}
	s.active.Add(1)
	s.inflight++
	s.mu.Unlock()

	if t := s.eng.Tasks(); t != nil {
		if _, queued := t.Load(); queued > s.cfg.MaxQueueDepth {
			s.exitActive()
			return errf(CodeBusy,
				"task manager backlog: %d HIT groups queued (limit %d); retry later",
				queued, s.cfg.MaxQueueDepth)
		}
	}
	// Queries parked behind full slots must not start once draining
	// begins — re-check via the drain channel while blocked.
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-s.drainCh:
		s.exitActive()
		return errf(CodeShuttingDown, "server is shutting down")
	case <-ctx.Done():
		s.exitActive()
		return errf(CodeCancelled, "cancelled while queued for an execution slot")
	}
}

func (s *Server) exitActive() {
	s.mu.Lock()
	s.inflight--
	s.mu.Unlock()
	s.active.Done()
}

func (s *Server) release() {
	<-s.slots
	s.exitActive()
}

func (s *Server) countRejected(err *Error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch err.Code {
	case CodeBusy, CodeShuttingDown, CodeTooManySessions:
		s.stats.Rejected++
	default:
		s.stats.Errors++
	}
}

func (s *Server) countError() {
	s.mu.Lock()
	s.stats.Errors++
	s.mu.Unlock()
}

// Stats snapshots the full service report.
func (s *Server) Stats() StatsReport {
	s.mu.Lock()
	st := s.stats
	st.ActiveSessions = len(s.sessions)
	st.InFlightQueries = s.inflight
	st.RetainedJobs = len(s.jobs)
	st.Draining = s.draining
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		if !j.State().Terminal() {
			st.ActiveJobs++
		}
	}

	report := StatsReport{Server: st, Cache: s.eng.CacheStats(), CostModel: s.costModelReport()}
	for _, sess := range sessions {
		report.Sessions = append(report.Sessions, sess.Info())
	}
	sort.Slice(report.Sessions, func(i, j int) bool {
		return report.Sessions[i].ID < report.Sessions[j].ID
	})
	if t := s.eng.Tasks(); t != nil {
		ts := t.Stats()
		report.Tasks = &ts
		report.SchedulerInFlight, report.SchedulerQueued = t.Load()
	}
	return report
}

// Healthy reports whether the server accepts queries.
func (s *Server) Healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining
}

// trackListener registers a listener to be closed when Shutdown begins
// (stops new connections).
func (s *Server) trackListener(c interface{ Close() error }) {
	s.lnMu.Lock()
	s.listeners = append(s.listeners, c)
	s.lnMu.Unlock()
}

// trackPostDrain registers a closer to run only after the drain, so
// in-flight work still reaches its client (wire connections).
func (s *Server) trackPostDrain(c interface{ Close() error }) {
	s.lnMu.Lock()
	s.postDrain = append(s.postDrain, c)
	s.lnMu.Unlock()
}

// Shutdown drains the server: listeners close immediately (no new
// connections), new queries are refused, running ones finish and deliver
// their responses (or ctx expires), then remaining wire connections are
// force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	s.mu.Unlock()

	s.lnMu.Lock()
	listeners := s.listeners
	s.listeners = nil
	s.lnMu.Unlock()
	for _, l := range listeners {
		l.Close() //nolint:errcheck // best-effort teardown
	}

	done := make(chan struct{})
	go func() {
		s.active.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		// Drain deadline: jobs still running are forcibly failed with the
		// coded shutting_down error. Cancellation propagates through the
		// statement contexts into the crowd operators, so the wait below
		// is short; paid work settles against the session budgets.
		s.mu.Lock()
		jobs := make([]*Job, 0, len(s.jobs))
		for _, j := range s.jobs {
			jobs = append(jobs, j)
		}
		s.mu.Unlock()
		for _, j := range jobs {
			j.requestCancel(CodeShuttingDown,
				"server drain deadline reached with the query still running")
		}
		<-done
	}

	s.lnMu.Lock()
	post := s.postDrain
	s.postDrain = nil
	s.lnMu.Unlock()
	for _, c := range post {
		c.Close() //nolint:errcheck // best-effort teardown
	}
	s.jmu.Lock()
	journal := s.journal
	s.journal = nil
	s.jmu.Unlock()
	if journal != nil {
		journal.Close() //nolint:errcheck // best-effort teardown
	}
	return err
}
