package server

// The durable-jobs acceptance suite: a crowddbd "restart" is simulated by
// closing the engine + server over a data dir and jobs journal, then
// assembling fresh ones over the same paths. Crashes are simulated with
// the faultinject registry's soft handler: from the armed instant on,
// every durability write (shard WAL, jobs journal, compare-answer
// persistence) is silently dropped — exactly the writes a torn process
// would have lost — while the dying process's in-memory state plays out.
//
// The contracts pinned here:
//   - finished jobs survive a restart with state, columns, and full row
//     buffers intact (?from=N reconnects see identical bytes);
//   - interrupted read-only scripts resume to completion with rows
//     byte-identical to an uninterrupted run, zero re-paid comparisons,
//     and the session budget settling at exactly the uninterrupted value;
//   - scripts with writes, and jobs whose session did not survive, come
//     back terminal in the coded interrupted state;
//   - across arbitrary crashpoints the journal never invents rows, never
//     regresses an acknowledged offset, and never over-charges a budget.

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"crowddb/internal/core"
	"crowddb/internal/crowd"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/faultinject"
	"crowddb/internal/sim"
	"crowddb/internal/sqltypes"
	"crowddb/internal/storage"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

const durableQuery = "SELECT id FROM Pair WHERE a ~= b"

// durableEngine opens a durable engine over dataDir with a fully
// deterministic crowd: perfect-accuracy workers, no spammers, no format
// noise, and a difficulty-0 oracle. Every majority vote is unanimous and
// correct, so a resumed execution reaches the same decisions as an
// uninterrupted one regardless of which comparisons replay from the
// persistent cache and which consume fresh market randomness.
func durableEngine(t *testing.T, dataDir string, seed int64, n int) *core.Engine {
	t.Helper()
	cs := workload.NewCompanies(n, seed)
	base := cs.Oracle()
	oracle := workload.NewOracle()
	oracle.RegisterCompare(func(kind crowd.TaskKind, q, l, r string) *crowd.SimTruth {
		tr := base.CompareTruth(kind, q, l, r)
		if tr != nil {
			tr.Difficulty = 0 // perfect workers never err: byte-identical replays
		}
		return tr
	})
	mcfg := sim.DefaultConfig()
	mcfg.Seed = seed
	mcfg.Pool.SpammerFrac = 0
	mcfg.Pool.AccuracyMean = 1
	mcfg.Pool.AccuracySpread = 0
	mcfg.Pool.GarbageRate = 0
	mcfg.FormatNoiseRate = 0
	eng, err := core.Open(core.Config{
		DataDir:  dataDir,
		WALSync:  storage.SyncAlways,
		Platform: amt.New(sim.NewMarket(mcfg)),
		Oracle:   oracle,
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// seedPairs populates the Pair table with n true-match surface-form pairs
// (run once, on the first open of a data dir).
func seedPairs(t *testing.T, eng *core.Engine, seed int64, n int) {
	t.Helper()
	if _, err := eng.Exec(`CREATE TABLE Pair (id INTEGER PRIMARY KEY, a STRING, b STRING)`); err != nil {
		t.Fatal(err)
	}
	cs := workload.NewCompanies(n, seed)
	for i, c := range cs.List {
		variant := c.Variants[len(c.Variants)-1]
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO Pair VALUES (%d, %s, %s)",
			i, sqltypes.NewString(c.Canonical).SQLLiteral(), sqltypes.NewString(variant).SQLLiteral())); err != nil {
			t.Fatal(err)
		}
	}
}

// renderedRows flattens a job's full row buffer (the ?from=0 stream) into
// comparable strings.
func renderedRows(j *Job) []string {
	rows, _, _ := j.rowsFrom(0)
	out := make([]string, len(rows))
	for i, r := range rows {
		var sb strings.Builder
		for k, c := range r {
			if k > 0 {
				sb.WriteByte('|')
			}
			if c == nil {
				sb.WriteString(`\N`)
			} else {
				sb.WriteString(*c)
			}
		}
		out[i] = sb.String()
	}
	return out
}

func waitDone(t *testing.T, j *Job) JobState {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	state, err := j.waitTerminal(ctx)
	if err != nil {
		t.Fatalf("job %s did not reach a terminal state: %v", j.ID(), err)
	}
	return state
}

// baselineRun executes the pair query uninterrupted in fresh dirs and
// returns the rendered rows and the session's settled budget — the values
// every crash/recovery arm must converge to.
func baselineRun(t *testing.T, seed int64, n, budget int) ([]string, int) {
	t.Helper()
	dir := t.TempDir()
	eng := durableEngine(t, filepath.Join(dir, "data"), seed, n)
	defer eng.Close()
	seedPairs(t, eng, seed, n)
	srv := New(eng, Config{})
	if err := srv.EnableJournal(filepath.Join(dir, "jobs.log"), storage.SyncAlways); err != nil {
		t.Fatal(err)
	}
	sess, serr := srv.CreateSession(budget)
	if serr != nil {
		t.Fatal(serr)
	}
	job, serr := srv.StartJob(sess.ID(), durableQuery)
	if serr != nil {
		t.Fatal(serr)
	}
	if state := waitDone(t, job); state != JobDone {
		t.Fatalf("baseline job state = %s (err %v), want done", state, job.Err())
	}
	return renderedRows(job), sess.Info().BudgetLeft
}

// TestJournalRecoversFinishedJob: a job that completed before the restart
// comes back terminal with its state, columns, and row buffer intact, and
// a reconnecting ?from=N client sees the identical suffix.
func TestJournalRecoversFinishedJob(t *testing.T) {
	const seed, n, budget = 61, 4, 20
	dir := t.TempDir()
	data, jpath := filepath.Join(dir, "data"), filepath.Join(dir, "jobs.log")

	eng1 := durableEngine(t, data, seed, n)
	seedPairs(t, eng1, seed, n)
	srv1 := New(eng1, Config{})
	if err := srv1.EnableJournal(jpath, storage.SyncAlways); err != nil {
		t.Fatal(err)
	}
	sess1, serr := srv1.CreateSession(budget)
	if serr != nil {
		t.Fatal(serr)
	}
	job1, serr := srv1.StartJob(sess1.ID(), durableQuery)
	if serr != nil {
		t.Fatal(serr)
	}
	if state := waitDone(t, job1); state != JobDone {
		t.Fatalf("job state = %s (err %v), want done", state, job1.Err())
	}
	wantRows := renderedRows(job1)
	wantBudget := sess1.Info().BudgetLeft
	wantInfo := job1.Info()
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := eng1.Close(); err != nil {
		t.Fatal(err)
	}

	eng2 := durableEngine(t, data, seed, n)
	defer eng2.Close()
	srv2 := New(eng2, Config{})
	if err := srv2.EnableJournal(jpath, storage.SyncAlways); err != nil {
		t.Fatal(err)
	}
	job2, serr := srv2.Job(job1.ID())
	if serr != nil {
		t.Fatal(serr)
	}
	info := job2.Info()
	if info.State != JobDone {
		t.Fatalf("recovered job state = %s, want done", info.State)
	}
	if !reflect.DeepEqual(info.Columns, wantInfo.Columns) {
		t.Errorf("recovered columns = %v, want %v", info.Columns, wantInfo.Columns)
	}
	if got := renderedRows(job2); !reflect.DeepEqual(got, wantRows) {
		t.Errorf("recovered rows diverge:\n%v\nwant\n%v", got, wantRows)
	}
	// Reconnect mid-stream: from=2 serves exactly the tail.
	tail, _, _ := job2.rowsFrom(2)
	if len(tail) != len(wantRows)-2 {
		t.Errorf("rowsFrom(2) served %d rows, want %d", len(tail), len(wantRows)-2)
	}
	// The session survived with its crash-exact settled budget.
	sess2, serr := srv2.Session(sess1.ID())
	if serr != nil {
		t.Fatal(serr)
	}
	if got := sess2.Info().BudgetLeft; got != wantBudget {
		t.Errorf("recovered session budget = %d, want %d", got, wantBudget)
	}
	// Re-running the query on the recovered engine is free: every answer
	// was persisted, so no HIT group is ever posted again.
	if _, qerr := srv2.querySession(sess2, durableQuery); qerr != nil {
		t.Fatal(qerr)
	}
	if st := eng2.Tasks().Stats(); st.GroupsPosted != 0 {
		t.Errorf("re-run after restart posted %d HIT groups, want 0 (answers persisted)", st.GroupsPosted)
	}
	// The id sequences continued past the recovered resources.
	sess3, serr := srv2.CreateSession(-1)
	if serr != nil {
		t.Fatal(serr)
	}
	if sess3.ID() == sess1.ID() {
		t.Errorf("recovered server re-issued session id %s", sess3.ID())
	}
	job3, serr := srv2.StartJob(sess3.ID(), "SHOW TABLES")
	if serr != nil {
		t.Fatal(serr)
	}
	if job3.ID() == job1.ID() {
		t.Errorf("recovered server re-issued job id %s", job3.ID())
	}
	waitDone(t, job3)
}

// TestJournalResumesInterruptedJob: a crash mid-stream loses nothing a
// client was acknowledged — the restarted server resumes the read-only
// script, the full stream is byte-identical to an uninterrupted run, no
// persisted comparison is re-paid, and the session budget settles at
// exactly the uninterrupted value.
func TestJournalResumesInterruptedJob(t *testing.T) {
	const seed, n, budget = 47, 4, 20
	wantRows, wantBudget := baselineRun(t, seed, n, budget)

	dir := t.TempDir()
	data, jpath := filepath.Join(dir, "data"), filepath.Join(dir, "jobs.log")
	eng1 := durableEngine(t, data, seed, n)
	seedPairs(t, eng1, seed, n)
	srv1 := New(eng1, Config{})
	if err := srv1.EnableJournal(jpath, storage.SyncAlways); err != nil {
		t.Fatal(err)
	}
	sess1, serr := srv1.CreateSession(budget)
	if serr != nil {
		t.Fatal(serr)
	}

	defer faultinject.Disarm()
	faultinject.SetHandler(func(string) {}) // in-process crash: durability writes stop
	if err := faultinject.Arm("server.job.row=3"); err != nil {
		t.Fatal(err)
	}
	job1, serr := srv1.StartJob(sess1.ID(), durableQuery)
	if serr != nil {
		t.Fatal(serr)
	}
	waitDone(t, job1) // the dying process's in-memory terminal state is irrelevant
	eng1.Close()      // Killed() is still set: closing persists nothing further
	faultinject.Disarm()

	// How many answers became durable (and were charged) before the crash?
	persisted := 0
	if err := storage.ReplayRecordLog(jpath, func(line json.RawMessage) error {
		var rec journalRec
		if err := json.Unmarshal(line, &rec); err != nil {
			return err
		}
		if rec.T == recSpend && rec.Session == sess1.ID() {
			persisted += rec.N
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if persisted == 0 {
		t.Fatal("test setup: the crash was meant to land after at least one persisted answer")
	}

	eng2 := durableEngine(t, data, seed, n)
	defer eng2.Close()
	srv2 := New(eng2, Config{})
	if err := srv2.EnableJournal(jpath, storage.SyncAlways); err != nil {
		t.Fatal(err)
	}
	job2, serr := srv2.Job(job1.ID())
	if serr != nil {
		t.Fatal(serr)
	}
	if state := waitDone(t, job2); state != JobDone {
		t.Fatalf("resumed job state = %s (err %v), want done", state, job2.Err())
	}
	if got := renderedRows(job2); !reflect.DeepEqual(got, wantRows) {
		t.Errorf("resumed stream diverges from the uninterrupted run:\n%v\nwant\n%v", got, wantRows)
	}
	// Zero re-paid comparisons: the resumed run buys exactly the answers
	// the crash lost — never one the persistent cache already holds.
	if st := eng2.Tasks().Stats(); st.GroupsPosted != n-persisted {
		t.Errorf("resumed run posted %d HIT groups, want %d (%d answers were persisted pre-crash)",
			st.GroupsPosted, n-persisted, persisted)
	}
	sess2, serr := srv2.Session(sess1.ID())
	if serr != nil {
		t.Fatal(serr)
	}
	if got := sess2.Info().BudgetLeft; got != wantBudget {
		t.Errorf("budget settles at %d after crash+resume, want %d (the uninterrupted value)", got, wantBudget)
	}
}

// TestJournalInterruptsUnresumableJobs: non-terminal journal entries whose
// script contains writes, or whose session did not survive, recover as
// terminal interrupted jobs instead of silently vanishing or re-running.
func TestJournalInterruptsUnresumableJobs(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "jobs.log")
	b := 10
	log, err := storage.OpenRecordLog(jpath, storage.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []journalRec{
		{T: recSession, Session: "s000001", Budget: &b},
		{T: recSubmit, Job: "j000001", Session: "s000001", SQL: "INSERT INTO Pair VALUES (99, 'x', 'y')"},
		{T: recRun, Job: "j000001"},
		{T: recSession, Session: "s000002", Budget: &b},
		{T: recSubmit, Job: "j000002", Session: "s000002", SQL: "SELECT id FROM Pair"},
		{T: recSessionClose, Session: "s000002"},
	} {
		if err := log.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	eng := pairEngine(t, 3, 1)
	srv := New(eng, Config{})
	if err := srv.EnableJournal(jpath, storage.SyncAlways); err != nil {
		t.Fatal(err)
	}
	for id, wantMsg := range map[string]string{
		"j000001": "not resumable",
		"j000002": "did not survive",
	} {
		job, serr := srv.Job(id)
		if serr != nil {
			t.Fatalf("job %s: %v", id, serr)
		}
		if st := job.State(); st != JobInterrupted {
			t.Errorf("job %s state = %s, want interrupted", id, st)
		}
		jerr := job.Err()
		if jerr == nil || jerr.Code != CodeInterrupted {
			t.Errorf("job %s error = %v, want code %s", id, jerr, CodeInterrupted)
		} else if !strings.Contains(jerr.Message, wantMsg) {
			t.Errorf("job %s message %q does not mention %q", id, jerr.Message, wantMsg)
		}
	}
	// The closed session stayed closed; the live one recovered.
	if _, serr := srv.Session("s000002"); serr == nil {
		t.Error("closed session s000002 was resurrected")
	}
	sess, serr := srv.Session("s000001")
	if serr != nil {
		t.Fatal(serr)
	}
	if got := sess.Info().BudgetLeft; got != b {
		t.Errorf("recovered budget = %d, want %d", got, b)
	}
}

// TestDrainDeadlineFailsRunningJobs: a Shutdown whose context expires
// forcibly fails still-running jobs with the coded shutting_down error
// instead of hanging the drain forever on stuck crowd work.
func TestDrainDeadlineFailsRunningJobs(t *testing.T) {
	eng := pairEngine(t, 83, 1)
	srv := New(eng, Config{})
	sess, serr := srv.CreateSession(-1)
	if serr != nil {
		t.Fatal(serr)
	}

	// Park the job on crowd work that never resolves: a foreign session
	// holds the pair's singleflight claim and never answers.
	cs := workload.NewCompanies(1, 83)
	l := cs.List[0].Canonical
	r := cs.List[0].Variants[len(cs.List[0].Variants)-1]
	if claim := eng.Cache().ClaimEqual("", l, r); !claim.Leader {
		t.Fatal("test setup: expected to lead the claim")
	}

	job, serr := srv.StartJob(sess.ID(), durableQuery)
	if serr != nil {
		t.Fatal(serr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for job.State() != JobRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (state %s)", job.State())
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown returned %v, want context.DeadlineExceeded", err)
	}
	if st := job.State(); st != JobFailed {
		t.Fatalf("drained job state = %s, want failed", st)
	}
	jerr := job.Err()
	if jerr == nil || jerr.Code != CodeShuttingDown {
		t.Fatalf("drained job error = %v, want code %s", jerr, CodeShuttingDown)
	}
}

// TestCrashpointRecoveryProperty kills the durability layers at assorted
// crashpoints mid-crowd-query and asserts the recovery invariants at
// every one of them:
//
//   - the journal never invents rows: whatever it recovered is a prefix
//     of the uninterrupted run's stream, in order (no acknowledged offset
//     ever regresses);
//   - the recovered job lands in a coherent terminal state (done after a
//     resume, or interrupted) — or, if the crash predates the submit
//     record's fsync, is unknown entirely;
//   - a completed resume is byte-identical to the uninterrupted stream;
//   - the session budget never settles below the uninterrupted value
//     (crashes may under-charge — lose unjournaled spend — but can never
//     double-charge).
func TestCrashpointRecoveryProperty(t *testing.T) {
	const seed, n, budget = 29, 4, 20
	wantRows, wantBudget := baselineRun(t, seed, n, budget)

	specs := []string{
		"server.job.row=1",
		"server.job.row=2",
		"server.job.row=4",
		"server.job.state=1",
		"server.job.state=2",
		"storage.recordlog.append=1",
		"storage.recordlog.append=3",
		"storage.wal.append=2",
	}
	for _, spec := range specs {
		t.Run(spec, func(t *testing.T) {
			dir := t.TempDir()
			data, jpath := filepath.Join(dir, "data"), filepath.Join(dir, "jobs.log")
			eng1 := durableEngine(t, data, seed, n)
			seedPairs(t, eng1, seed, n)
			srv1 := New(eng1, Config{})
			if err := srv1.EnableJournal(jpath, storage.SyncAlways); err != nil {
				t.Fatal(err)
			}
			sess1, serr := srv1.CreateSession(budget)
			if serr != nil {
				t.Fatal(serr)
			}

			defer faultinject.Disarm()
			faultinject.SetHandler(func(string) {})
			if err := faultinject.Arm(spec); err != nil {
				t.Fatal(err)
			}
			job1, serr := srv1.StartJob(sess1.ID(), durableQuery)
			if serr != nil {
				t.Fatal(serr)
			}
			waitDone(t, job1)
			eng1.Close()
			faultinject.Disarm()

			// What did the journal acknowledge for this job?
			var ackRows int
			err := storage.ReplayRecordLog(jpath, func(line json.RawMessage) error {
				var rec journalRec
				if err := json.Unmarshal(line, &rec); err != nil {
					return err
				}
				if rec.T == recRow && rec.Job == job1.ID() {
					ackRows++
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if ackRows > len(wantRows) {
				t.Fatalf("journal acknowledged %d rows, baseline has %d", ackRows, len(wantRows))
			}

			eng2 := durableEngine(t, data, seed, n)
			defer eng2.Close()
			srv2 := New(eng2, Config{})
			if err := srv2.EnableJournal(jpath, storage.SyncAlways); err != nil {
				t.Fatal(err)
			}
			job2, serr := srv2.Job(job1.ID())
			if serr != nil {
				// Coherent only if the crash predates the submit record.
				if ackRows != 0 {
					t.Fatalf("job with %d acknowledged rows vanished: %v", ackRows, serr)
				}
				return
			}
			state := waitDone(t, job2)
			rows := renderedRows(job2)
			switch state {
			case JobDone:
				if !reflect.DeepEqual(rows, wantRows) {
					t.Errorf("resumed stream diverges:\n%v\nwant\n%v", rows, wantRows)
				}
			case JobInterrupted:
				if len(rows) != ackRows {
					t.Errorf("interrupted job retains %d rows, journal acknowledged %d", len(rows), ackRows)
				}
			default:
				t.Errorf("recovered job state = %s, want done or interrupted", state)
			}
			// Acknowledged rows never regress: the final buffer starts with
			// exactly the journaled prefix of the baseline stream.
			for i := 0; i < ackRows && i < len(rows); i++ {
				if rows[i] != wantRows[i] {
					t.Errorf("acknowledged row %d changed across restart: %q vs %q", i, rows[i], wantRows[i])
				}
			}
			if sess2, serr := srv2.Session(sess1.ID()); serr == nil {
				got := sess2.Info().BudgetLeft
				if got < wantBudget || got > budget {
					t.Errorf("budget settled at %d, want within [%d, %d] (never over-charged)", got, wantBudget, budget)
				}
			}
		})
	}
}
