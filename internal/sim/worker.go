package sim

import (
	"fmt"
	"math"
	"math/rand"

	"crowddb/internal/crowd"
)

// Worker is one simulated crowd member. The population mixes mostly-reliable
// workers with a spammer fraction, matching the paper's observation that
// answers "can never be assumed to be complete or correct" (§3.2.1).
type Worker struct {
	ID string
	// Accuracy is the probability of answering an easy task correctly.
	Accuracy float64
	// GarbageRate is the probability of submitting an unusable answer for a
	// field (empty / keyboard mash) regardless of skill.
	GarbageRate float64
	// Speed scales task latency (1.0 = population median).
	Speed float64
	// Lat/Lon is the worker's location; the mobile platform geo-fences on it.
	Lat, Lon float64

	// Completed counts submitted assignments (worker-affinity statistics,
	// the paper's community observation).
	Completed int
	// Earned is total approved pay.
	Earned crowd.Cents
}

// Region is a geographic square used to scatter worker locations.
type Region struct {
	LatMin, LatMax float64
	LonMin, LonMax float64
}

// WorkerPoolConfig controls population generation.
type WorkerPoolConfig struct {
	Size int
	// SpammerFrac of workers answer near-randomly.
	SpammerFrac     float64
	SpammerAccuracy float64
	// Good workers draw accuracy from a clamped normal.
	AccuracyMean   float64
	AccuracySpread float64
	// GarbageRate applies to every worker uniformly at this rate.
	GarbageRate float64
	// Region scatters worker locations; nil leaves locations at (0,0).
	Region *Region
}

// NewWorkerPool generates a deterministic population from rng.
func NewWorkerPool(cfg WorkerPoolConfig, rng *rand.Rand) []*Worker {
	workers := make([]*Worker, cfg.Size)
	for i := range workers {
		w := &Worker{
			ID:          fmt.Sprintf("W%05d", i),
			GarbageRate: cfg.GarbageRate,
			Speed:       clamp(math.Exp(rng.NormFloat64()*0.4), 0.3, 4.0),
		}
		if rng.Float64() < cfg.SpammerFrac {
			w.Accuracy = cfg.SpammerAccuracy
			w.GarbageRate = clamp(cfg.GarbageRate*4, 0, 0.9)
		} else {
			w.Accuracy = clamp(cfg.AccuracyMean+rng.NormFloat64()*cfg.AccuracySpread, 0.5, 0.995)
		}
		if cfg.Region != nil {
			w.Lat = cfg.Region.LatMin + rng.Float64()*(cfg.Region.LatMax-cfg.Region.LatMin)
			w.Lon = cfg.Region.LonMin + rng.Float64()*(cfg.Region.LonMax-cfg.Region.LonMin)
		}
		workers[i] = w
	}
	return workers
}

// InFence reports whether the worker is inside the geo fence, using an
// equirectangular distance approximation (fine at city scale).
func (w *Worker) InFence(f *crowd.GeoFence) bool {
	if f == nil {
		return true
	}
	const kmPerDegLat = 111.32
	dLat := (w.Lat - f.Lat) * kmPerDegLat
	dLon := (w.Lon - f.Lon) * kmPerDegLat * math.Cos(f.Lat*math.Pi/180)
	return math.Sqrt(dLat*dLat+dLon*dLon) <= f.RadiusKM
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
