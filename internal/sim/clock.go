// Package sim is the discrete-event crowd simulator that stands in for the
// live crowds of the paper's evaluation (AMT workers and VLDB attendees).
// It models, in virtual time: price-elastic Poisson worker arrival, worker
// affinity (returning workers do most of the work), per-worker skill and
// diligence, log-normal task latency, and answer noise — the behaviours the
// paper's platform micro-benchmarks measure. Everything is seeded and
// deterministic.
package sim

import (
	"container/heap"
	"time"
)

// event is one scheduled callback in virtual time. seq breaks ties so
// same-instant events run in schedule order (determinism).
type event struct {
	at  time.Duration
	seq int64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Clock is a virtual clock with an event queue. It is not safe for
// concurrent use; the Market serializes access.
type Clock struct {
	now time.Duration
	pq  eventQueue
	seq int64
}

// NewClock returns a clock at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Schedule runs fn after delay of virtual time. A negative delay runs at the
// current instant (on the next Run step).
func (c *Clock) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	c.seq++
	heap.Push(&c.pq, &event{at: c.now + delay, seq: c.seq, fn: fn})
}

// RunFor advances virtual time by d, firing every event due in the window.
// Events scheduled by fired events are honored if they fall in the window.
func (c *Clock) RunFor(d time.Duration) {
	deadline := c.now + d
	for len(c.pq) > 0 && c.pq[0].at <= deadline {
		e := heap.Pop(&c.pq).(*event)
		c.now = e.at
		e.fn()
	}
	c.now = deadline
}

// Pending reports how many events are queued (used by tests).
func (c *Clock) Pending() int { return len(c.pq) }
