package sim

import (
	"testing"
	"time"
)

func TestDiurnalArrivalModulation(t *testing.T) {
	completeFrom := func(startHour int) time.Duration {
		cfg := DefaultConfig()
		cfg.DiurnalAmplitude = 0.85
		m := NewMarket(cfg)
		// Move the clock to the desired virtual hour before posting.
		m.Step(time.Duration(startHour) * time.Hour)
		id, _ := m.Post(testGroup(20, 3, 2))
		step := 10 * time.Minute
		for elapsed := time.Duration(0); elapsed < 300*time.Hour; elapsed += step {
			m.Step(step)
			if st, _ := m.Status(id); st.Completed == st.Posted {
				return elapsed
			}
		}
		return 300 * time.Hour
	}
	noon := completeFrom(10)     // posted near the peak
	midnight := completeFrom(22) // posted into the trough
	if noon >= midnight {
		t.Errorf("noon-posted group (%v) should beat midnight-posted (%v)", noon, midnight)
	}
}

func TestDiurnalZeroAmplitudeUnchanged(t *testing.T) {
	cfg := DefaultConfig()
	m1 := NewMarket(cfg)
	cfg.DiurnalAmplitude = 0
	m2 := NewMarket(cfg)
	id1, _ := m1.Post(testGroup(5, 2, 2))
	id2, _ := m2.Post(testGroup(5, 2, 2))
	m1.Step(48 * time.Hour)
	m2.Step(48 * time.Hour)
	r1, _ := m1.Results(id1)
	r2, _ := m2.Results(id2)
	if len(r1) != len(r2) {
		t.Errorf("amplitude 0 must not change behaviour: %d vs %d", len(r1), len(r2))
	}
}

func TestBlockedWorkerGetsNoWork(t *testing.T) {
	m := NewMarket(DefaultConfig())
	id, _ := m.Post(testGroup(30, 3, 2))
	m.Step(24 * time.Hour)
	stats := m.WorkerStats()
	if len(stats) == 0 {
		t.Fatal("no workers yet")
	}
	// Block the top worker mid-run.
	top := stats[0]
	m.Block(top.ID)
	if m.Blocked() != 1 {
		t.Error("blocked count")
	}
	before := top.Completed
	// The previously-claimed work may still complete; drain it, then post a
	// fresh group — the blocked worker must receive none of it.
	m.Step(100 * time.Hour)
	afterDrain := workerCompleted(m, top.ID)
	id2, _ := m.Post(testGroup(30, 3, 2))
	m.Step(200 * time.Hour)
	res, _ := m.Results(id2)
	if len(res) == 0 {
		t.Fatal("fresh group got no answers")
	}
	for _, a := range res {
		if a.WorkerID == top.ID {
			t.Fatalf("blocked worker %s was assigned new work", top.ID)
		}
	}
	_ = before
	_ = afterDrain
	_ = id
}

func workerCompleted(m *Market, id string) int {
	for _, w := range m.WorkerStats() {
		if w.ID == id {
			return w.Completed
		}
	}
	return 0
}
