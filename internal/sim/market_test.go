package sim

import (
	"fmt"
	"testing"
	"time"

	"crowddb/internal/crowd"
)

func testGroup(n, assignments int, reward crowd.Cents) *crowd.HITGroup {
	g := &crowd.HITGroup{
		Title:       "test",
		Kind:        crowd.TaskProbeValues,
		Reward:      reward,
		Assignments: assignments,
	}
	for i := 0; i < n; i++ {
		g.HITs = append(g.HITs, &crowd.HIT{
			ID:   fmt.Sprintf("H%03d", i),
			Kind: crowd.TaskProbeValues,
			Fields: []crowd.Field{
				{Name: "title", Kind: crowd.FieldDisplay, Value: fmt.Sprintf("talk %d", i)},
				{Name: "abstract", Kind: crowd.FieldInput, Label: "Enter the abstract"},
			},
			Truth: &crowd.SimTruth{Truth: map[string]string{"abstract": fmt.Sprintf("abstract-%d", i)}},
		})
	}
	return g
}

func TestClockOrdering(t *testing.T) {
	c := NewClock()
	var got []int
	c.Schedule(3*time.Second, func() { got = append(got, 3) })
	c.Schedule(1*time.Second, func() { got = append(got, 1) })
	c.Schedule(2*time.Second, func() { got = append(got, 2) })
	c.Schedule(1*time.Second, func() { got = append(got, 11) }) // same time: schedule order
	c.RunFor(10 * time.Second)
	want := []int{1, 11, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: %v", got)
		}
	}
	if c.Now() != 10*time.Second {
		t.Errorf("Now: %v", c.Now())
	}
}

func TestClockNestedSchedule(t *testing.T) {
	c := NewClock()
	fired := false
	c.Schedule(time.Second, func() {
		c.Schedule(time.Second, func() { fired = true })
	})
	c.RunFor(3 * time.Second)
	if !fired {
		t.Error("nested event in window must fire")
	}
}

func TestClockWindowBoundary(t *testing.T) {
	c := NewClock()
	fired := false
	c.Schedule(5*time.Second, func() { fired = true })
	c.RunFor(4 * time.Second)
	if fired {
		t.Error("future event fired early")
	}
	c.RunFor(time.Second)
	if !fired {
		t.Error("due event did not fire")
	}
}

func TestGroupCompletes(t *testing.T) {
	m := NewMarket(DefaultConfig())
	id, err := m.Post(testGroup(20, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	m.Step(48 * time.Hour)
	st, err := m.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 20 {
		t.Fatalf("only %d/20 HITs complete after 48h: %+v", st.Completed, st)
	}
	res, _ := m.Results(id)
	if len(res) < 60 {
		t.Errorf("want >= 60 assignments, got %d", len(res))
	}
	// Every assignment answers the input field.
	for _, a := range res {
		if _, ok := a.Answers["abstract"]; !ok {
			t.Fatalf("assignment %s missing answer", a.ID)
		}
	}
}

func TestHigherRewardCompletesFaster(t *testing.T) {
	complete := func(reward crowd.Cents) time.Duration {
		m := NewMarket(DefaultConfig())
		id, _ := m.Post(testGroup(30, 3, reward))
		step := 10 * time.Minute
		for elapsed := time.Duration(0); elapsed < 200*time.Hour; elapsed += step {
			m.Step(step)
			st, _ := m.Status(id)
			if st.Completed == st.Posted {
				return elapsed
			}
		}
		return 200 * time.Hour
	}
	cheap := complete(1)
	rich := complete(4)
	if rich >= cheap {
		t.Errorf("4¢ (%v) should finish before 1¢ (%v)", rich, cheap)
	}
}

func TestWorkerAffinitySkew(t *testing.T) {
	m := NewMarket(DefaultConfig())
	id, _ := m.Post(testGroup(100, 3, 2))
	m.Step(200 * time.Hour)
	st, _ := m.Status(id)
	if st.Completed < 90 {
		t.Fatalf("not enough completion for skew test: %+v", st)
	}
	stats := m.WorkerStats()
	if len(stats) < 5 {
		t.Fatalf("too few distinct workers: %d", len(stats))
	}
	total := 0
	for _, w := range stats {
		total += w.Completed
	}
	top10 := 0
	for i := 0; i < len(stats) && i < 10; i++ {
		top10 += stats[i].Completed
	}
	// The paper's affinity observation: a small set of workers does a
	// disproportionate share of all HITs.
	if float64(top10) < 0.5*float64(total) {
		t.Errorf("no affinity skew: top10=%d of %d (%d workers)", top10, total, len(stats))
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() (int, time.Duration) {
		m := NewMarket(DefaultConfig())
		id, _ := m.Post(testGroup(10, 2, 2))
		m.Step(24 * time.Hour)
		res, _ := m.Results(id)
		if len(res) == 0 {
			return 0, 0
		}
		return len(res), res[len(res)-1].SubmittedAt
	}
	n1, t1 := run()
	n2, t2 := run()
	if n1 != n2 || t1 != t2 {
		t.Errorf("same seed must reproduce: (%d,%v) vs (%d,%v)", n1, t1, n2, t2)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := DefaultConfig()
	m1 := NewMarket(cfg)
	cfg.Seed = 99
	m2 := NewMarket(cfg)
	id1, _ := m1.Post(testGroup(10, 2, 2))
	id2, _ := m2.Post(testGroup(10, 2, 2))
	m1.Step(24 * time.Hour)
	m2.Step(24 * time.Hour)
	r1, _ := m1.Results(id1)
	r2, _ := m2.Results(id2)
	if len(r1) > 0 && len(r2) > 0 && r1[0].SubmittedAt == r2[0].SubmittedAt && r1[0].WorkerID == r2[0].WorkerID {
		t.Error("different seeds produced identical first submissions")
	}
}

func TestExpiryStopsAnswers(t *testing.T) {
	g := testGroup(50, 5, 1)
	g.Expiry = 30 * time.Minute
	m := NewMarket(DefaultConfig())
	id, _ := m.Post(g)
	m.Step(30 * time.Minute)
	res1, _ := m.Results(id)
	m.Step(100 * time.Hour)
	res2, _ := m.Results(id)
	if len(res2) != len(res1) {
		t.Errorf("answers after expiry: %d -> %d", len(res1), len(res2))
	}
	st, _ := m.Status(id)
	if !st.Expired || !st.Done() {
		t.Errorf("expired group must report done: %+v", st)
	}
}

func TestNoWorkerRepeatsAHIT(t *testing.T) {
	m := NewMarket(DefaultConfig())
	id, _ := m.Post(testGroup(5, 5, 3))
	m.Step(100 * time.Hour)
	res, _ := m.Results(id)
	seen := map[string]bool{}
	for _, a := range res {
		key := a.HITID + "/" + a.WorkerID
		if seen[key] {
			t.Fatalf("worker %s answered HIT %s twice", a.WorkerID, a.HITID)
		}
		seen[key] = true
	}
}

func TestApprovePaysWorker(t *testing.T) {
	m := NewMarket(DefaultConfig())
	id, _ := m.Post(testGroup(5, 1, 3))
	m.Step(48 * time.Hour)
	res, _ := m.Results(id)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	pay, err := m.Approve(res[0].ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pay != 5 { // 3 reward + 2 bonus
		t.Errorf("pay: %v", pay)
	}
	if _, err := m.Approve(res[0].ID, 0); err == nil {
		t.Error("double approve must fail")
	}
	if m.TotalSpent() != 5 { // 3 reward + 2 bonus
		t.Errorf("spent: %v", m.TotalSpent())
	}
	if err := m.Reject("A9999999", "x"); err == nil {
		t.Error("reject unknown must fail")
	}
}

func TestGeoFenceFiltersWorkers(t *testing.T) {
	cfg := DefaultConfig()
	// Scatter workers over a wide region; fence a small corner.
	cfg.Pool.Region = &Region{LatMin: 47.0, LatMax: 48.0, LonMin: -123.0, LonMax: -122.0}
	m := NewMarket(cfg)
	g := testGroup(10, 2, 3)
	g.Venue = &crowd.GeoFence{Lat: 47.6, Lon: -122.3, RadiusKM: 5}
	id, _ := m.Post(g)
	m.Step(300 * time.Hour)
	res, _ := m.Results(id)
	if len(res) == 0 {
		t.Fatal("fenced group got no answers")
	}
	for _, a := range res {
		w := m.workerByID(a.WorkerID)
		if !w.InFence(g.Venue) {
			t.Fatalf("worker %s outside fence answered", w.ID)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	m := NewMarket(DefaultConfig())
	if _, err := m.Post(&crowd.HITGroup{Title: "empty", Reward: 1, Assignments: 1}); err == nil {
		t.Error("empty group must fail")
	}
	g := testGroup(1, 0, 1)
	if _, err := m.Post(g); err == nil {
		t.Error("zero assignments must fail")
	}
	g = testGroup(1, 1, 0)
	if _, err := m.Post(g); err == nil {
		t.Error("zero reward must fail")
	}
	if _, err := m.Status("G99999"); err == nil {
		t.Error("unknown group status must fail")
	}
	if _, err := m.Results("G99999"); err == nil {
		t.Error("unknown group results must fail")
	}
	if err := m.Expire("G99999"); err == nil {
		t.Error("unknown group expire must fail")
	}
}

func TestAnswerQualityTracksAccuracy(t *testing.T) {
	// With a high-accuracy, no-spammer population, most answers match truth.
	cfg := DefaultConfig()
	cfg.Pool.SpammerFrac = 0
	cfg.Pool.AccuracyMean = 0.95
	cfg.Pool.AccuracySpread = 0.02
	cfg.Pool.GarbageRate = 0
	cfg.FormatNoiseRate = 0
	m := NewMarket(cfg)
	id, _ := m.Post(testGroup(40, 3, 2))
	m.Step(100 * time.Hour)
	res, _ := m.Results(id)
	correct := 0
	for _, a := range res {
		var want string
		fmt.Sscanf(a.HITID, "H%s", &want)
		if a.Answers["abstract"] == "abstract-"+trimLeadingZeros(want) {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(res)); frac < 0.85 {
		t.Errorf("accuracy too low for clean population: %.2f (%d/%d)", frac, correct, len(res))
	}
}

func trimLeadingZeros(s string) string {
	for len(s) > 1 && s[0] == '0' {
		s = s[1:]
	}
	return s
}

// Adaptive vote sizing: once a HIT's early answers are unanimous at the
// quorum floor, the market stops soliciting the remaining assignments —
// the group completes with fewer paid answers than fixed replication,
// and correctness stays comparable.
func TestAdaptiveVotesFewerAssignments(t *testing.T) {
	correctFor := func(adaptive bool) (answers, correct int) {
		cfg := DefaultConfig()
		cfg.Seed = 42
		m := NewMarket(cfg)
		g := testGroup(40, 3, 2)
		g.AdaptiveVotes = adaptive
		id, err := m.Post(g)
		if err != nil {
			t.Fatal(err)
		}
		m.Step(200 * time.Hour)
		st, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed != 40 {
			t.Fatalf("adaptive=%v: only %d/40 HITs complete: %+v", adaptive, st.Completed, st)
		}
		res, _ := m.Results(id)
		byHIT := map[string]map[string]int{}
		for _, a := range res {
			if byHIT[a.HITID] == nil {
				byHIT[a.HITID] = map[string]int{}
			}
			byHIT[a.HITID][a.Answers["abstract"]]++
		}
		for i := 0; i < 40; i++ {
			hit := fmt.Sprintf("H%03d", i)
			truth := fmt.Sprintf("abstract-%d", i)
			best, bestN := "", 0
			for ans, n := range byHIT[hit] {
				if n > bestN || (n == bestN && ans < best) {
					best, bestN = ans, n
				}
			}
			if best == truth {
				correct++
			}
		}
		return len(res), correct
	}
	fixedAnswers, fixedCorrect := correctFor(false)
	adaptiveAnswers, adaptiveCorrect := correctFor(true)
	if adaptiveAnswers >= fixedAnswers {
		t.Errorf("adaptive must solicit fewer assignments: %d vs %d", adaptiveAnswers, fixedAnswers)
	}
	if fixedCorrect-adaptiveCorrect > 2 {
		t.Errorf("adaptive correctness dropped too far: %d vs %d of 40", adaptiveCorrect, fixedCorrect)
	}
}
