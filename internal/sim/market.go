package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"crowddb/internal/crowd"
	"crowddb/internal/quality"
)

// Config tunes the marketplace. Defaults (see DefaultConfig) are calibrated
// so the curves match the *shapes* of the paper's AMT micro-benchmarks:
// higher pay → faster completion with diminishing returns; bigger groups →
// higher throughput but later last answer; a few workers dominate.
type Config struct {
	Seed int64
	Pool WorkerPoolConfig

	// BaseArrivalPerHour is the worker arrival rate for a group paying
	// RefReward. Actual rate scales by (reward/RefReward)^PriceElasticity
	// and a mild group-size boost.
	BaseArrivalPerHour float64
	RefReward          crowd.Cents
	PriceElasticity    float64

	// MeanHITsPerVisit is the mean of the geometric number of HITs one
	// arriving worker claims.
	MeanHITsPerVisit float64

	// LatencyMedian is the median virtual time a worker spends per
	// assignment; per-assignment latency is log-normal with LatencySigma.
	LatencyMedian time.Duration
	LatencySigma  float64

	// AffinityProb is the chance an arrival is a returning worker chosen by
	// preferential attachment rather than a fresh uniform draw.
	AffinityProb float64

	// FormatNoiseRate is the chance a correct answer arrives with case or
	// whitespace damage (exercises answer cleansing).
	FormatNoiseRate float64

	// DiurnalAmplitude in [0,1) modulates worker arrival with the time of
	// (virtual) day — the paper observed AMT responsiveness varies by time
	// of day. 0 disables; at A the rate swings between (1-A) and (1+A) of
	// its base, peaking at virtual noon.
	DiurnalAmplitude float64
}

// DefaultConfig returns an AMT-like marketplace.
func DefaultConfig() Config {
	return Config{
		Seed: 1,
		Pool: WorkerPoolConfig{
			Size:            2000,
			SpammerFrac:     0.12,
			SpammerAccuracy: 0.55,
			AccuracyMean:    0.88,
			AccuracySpread:  0.08,
			GarbageRate:     0.03,
		},
		BaseArrivalPerHour: 6,
		RefReward:          1, // $0.01
		PriceElasticity:    0.9,
		MeanHITsPerVisit:   8,
		LatencyMedian:      45 * time.Second,
		LatencySigma:       0.8,
		AffinityProb:       0.65,
		FormatNoiseRate:    0.25,
	}
}

// hitState tracks one HIT's outstanding replication.
type hitState struct {
	hit       *crowd.HIT
	remaining int
	doneBy    map[string]bool // workers may not repeat a HIT
	// early marks a HIT closed below full replication: its answers were
	// unanimous above the quorum floor and the group opted into adaptive
	// vote sizing, so no further assignments are solicited.
	early bool
}

type group struct {
	id          crowd.GroupID
	spec        *crowd.HITGroup
	hits        []*hitState
	assignments []*crowd.Assignment
	byAssignID  map[string]*crowd.Assignment
	completed   int
	expired     bool
	postedAt    time.Duration
	arrivalsOn  bool
}

// Market is the simulated labor marketplace both platforms are built on.
// All methods are safe for concurrent use; the discrete-event clock runs
// under the market mutex.
type Market struct {
	mu       sync.Mutex
	cfg      Config
	clock    *Clock
	rng      *rand.Rand
	workers  []*Worker
	returned []*Worker // workers who have completed ≥1 assignment, with repeats (preferential attachment)
	blocked  map[string]bool
	groups   map[crowd.GroupID]*group
	nextGID  int
	nextAID  int

	totalSubmitted int
	totalSpent     crowd.Cents
}

// NewMarket builds a marketplace with its worker population.
func NewMarket(cfg Config) *Market {
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Market{
		cfg:     cfg,
		clock:   NewClock(),
		rng:     rng,
		workers: NewWorkerPool(cfg.Pool, rng),
		blocked: make(map[string]bool),
		groups:  make(map[crowd.GroupID]*group),
	}
}

// Block bars a worker from future assignments (the WRM escalation beyond
// rejecting individual answers). Already-claimed work still completes.
func (m *Market) Block(workerID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blocked[workerID] = true
}

// Blocked reports how many workers are blocked.
func (m *Market) Blocked() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blocked)
}

// Now returns the market's virtual time.
func (m *Market) Now() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.clock.Now()
}

// Step advances the simulation by d of virtual time.
func (m *Market) Step(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clock.RunFor(d)
}

// Post publishes a HIT group and starts its worker-arrival process.
func (m *Market) Post(spec *crowd.HITGroup) (crowd.GroupID, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextGID++
	g := &group{
		id:         crowd.GroupID(fmt.Sprintf("G%05d", m.nextGID)),
		spec:       spec,
		byAssignID: make(map[string]*crowd.Assignment),
		postedAt:   m.clock.Now(),
	}
	for _, h := range spec.HITs {
		g.hits = append(g.hits, &hitState{hit: h, remaining: spec.Assignments, doneBy: make(map[string]bool)})
	}
	m.groups[g.id] = g
	if spec.Expiry > 0 {
		m.clock.Schedule(spec.Expiry, func() { g.expired = true })
	}
	g.arrivalsOn = true
	m.scheduleArrival(g)
	return g.id, nil
}

// arrivalRate computes the Poisson arrival rate (per hour) for a group:
// price-elastic in the reward, with a mild boost for large groups (big
// batches are more visible on the platform, a paper observation).
func (m *Market) arrivalRate(g *group) float64 {
	ratio := float64(g.spec.Reward) / float64(m.cfg.RefReward)
	if ratio <= 0 {
		ratio = 0.01
	}
	rate := m.cfg.BaseArrivalPerHour * math.Pow(ratio, m.cfg.PriceElasticity)
	rate *= 1 + 0.15*math.Log1p(float64(len(g.spec.HITs)))
	if a := m.cfg.DiurnalAmplitude; a > 0 {
		hour := math.Mod(m.clock.Now().Hours(), 24)
		// Peak at 12:00, trough at 00:00 virtual time.
		rate *= 1 + a*math.Sin(2*math.Pi*hour/24-math.Pi/2)
	}
	return rate
}

func (m *Market) scheduleArrival(g *group) {
	if g.expired || g.completed == len(g.hits) {
		g.arrivalsOn = false
		return
	}
	rate := m.arrivalRate(g) // per hour
	// Exponential inter-arrival time.
	gap := time.Duration(m.rng.ExpFloat64() / rate * float64(time.Hour))
	m.clock.Schedule(gap, func() { m.arrive(g) })
}

// arrive is one worker showing up for a group, claiming HITs, and
// scheduling their submissions. Runs under the market mutex (clock events
// fire inside Step).
func (m *Market) arrive(g *group) {
	defer m.scheduleArrival(g)
	if g.expired || g.completed == len(g.hits) {
		g.arrivalsOn = false
		return
	}
	w := m.pickWorker(g.spec.Venue)
	if w == nil {
		return // nobody in the fence this time
	}
	// Geometric number of HITs this visit.
	p := 1 / math.Max(m.cfg.MeanHITsPerVisit, 1)
	want := 1
	for m.rng.Float64() > p && want < len(g.hits) {
		want++
	}
	var claimed []*hitState
	for _, hs := range g.hits {
		if len(claimed) >= want {
			break
		}
		if hs.remaining > 0 && !hs.doneBy[w.ID] {
			hs.remaining--
			hs.doneBy[w.ID] = true
			claimed = append(claimed, hs)
		}
	}
	elapsed := time.Duration(0)
	for _, hs := range claimed {
		// Log-normal work time, scaled by the worker's speed.
		lat := time.Duration(float64(m.cfg.LatencyMedian) * w.Speed *
			math.Exp(m.rng.NormFloat64()*m.cfg.LatencySigma))
		elapsed += lat
		hs := hs
		at := elapsed
		m.clock.Schedule(at, func() { m.submit(g, hs, w) })
	}
}

// pickWorker selects an arriving worker: a returning one by preferential
// attachment with probability AffinityProb, else a uniform draw. With a
// venue fence only eligible workers are considered.
func (m *Market) pickWorker(fence *crowd.GeoFence) *Worker {
	eligible := func(w *Worker) bool { return !m.blocked[w.ID] && w.InFence(fence) }
	// Affinity first: returning workers by preferential attachment.
	if len(m.returned) > 0 && m.rng.Float64() < m.cfg.AffinityProb {
		for try := 0; try < 8; try++ {
			w := m.returned[m.rng.Intn(len(m.returned))]
			if eligible(w) {
				return w
			}
		}
	}
	for try := 0; try < 32; try++ {
		w := m.workers[m.rng.Intn(len(m.workers))]
		if eligible(w) {
			return w
		}
	}
	return nil
}

// submit records one finished assignment with simulated answers.
func (m *Market) submit(g *group, hs *hitState, w *Worker) {
	if g.expired {
		return
	}
	m.nextAID++
	a := &crowd.Assignment{
		ID:          fmt.Sprintf("A%07d", m.nextAID),
		HITID:       hs.hit.ID,
		WorkerID:    w.ID,
		Status:      crowd.AssignmentSubmitted,
		SubmittedAt: m.clock.Now(),
		Answers:     m.answer(hs.hit, w),
	}
	g.assignments = append(g.assignments, a)
	g.byAssignID[a.ID] = a
	w.Completed++
	m.returned = append(m.returned, w) // one entry per completion = preferential attachment
	m.totalSubmitted++

	if g.spec.AdaptiveVotes && !hs.early && unanimousAboveQuorum(g, hs.hit) {
		// Early answers agree above the quorum floor: stop soliciting
		// further assignments for this HIT (adaptive vote sizing).
		hs.early = true
		hs.remaining = 0
	}

	done := true
	for _, other := range g.hits {
		if !hitSatisfied(g, other) {
			done = false
			break
		}
	}
	if done {
		g.completed = len(g.hits)
	}
}

// hitSatisfied reports whether a HIT needs no further answers: closed
// early on unanimity, or fully claimed and fully replicated.
func hitSatisfied(g *group, hs *hitState) bool {
	return hs.early || (hs.remaining <= 0 && len(answersFor(g, hs.hit.ID)) >= g.spec.Assignments)
}

// unanimousAboveQuorum reports whether every submitted answer for the HIT
// agrees on every input field after cleansing, with at least a majority
// quorum's worth of answers in and none of them garbage.
func unanimousAboveQuorum(g *group, hit *crowd.HIT) bool {
	as := answersFor(g, hit.ID)
	if len(as) < quality.MajorityFor(g.spec.Assignments) {
		return false
	}
	for _, field := range hit.InputFields() {
		var first string
		for i, a := range as {
			ans, ok := a.Answers[field]
			if !ok || quality.IsGarbage(ans) {
				return false
			}
			norm := quality.Normalize(ans)
			if i == 0 {
				first = norm
			} else if norm != first {
				return false
			}
		}
	}
	return true
}

func answersFor(g *group, hitID string) []*crowd.Assignment {
	var out []*crowd.Assignment
	for _, a := range g.assignments {
		if a.HITID == hitID {
			out = append(out, a)
		}
	}
	return out
}

// answer simulates a worker filling the HIT's form. CrowdDB never sees this
// logic — it only sees the resulting Assignment, exactly as with a live
// crowd.
func (m *Market) answer(h *crowd.HIT, w *Worker) map[string]string {
	out := make(map[string]string)
	var truth *crowd.SimTruth = h.Truth
	for _, f := range h.Fields {
		if f.Kind == crowd.FieldDisplay {
			continue
		}
		if m.rng.Float64() < w.GarbageRate {
			out[f.Name] = garbageAnswer(m.rng)
			continue
		}
		difficulty := 0.0
		var correct string
		var wrongs []string
		if truth != nil {
			difficulty = truth.Difficulty
			correct = truth.Truth[f.Name]
			wrongs = truth.Wrong[f.Name]
		}
		// Effective accuracy degrades toward a coin flip as difficulty→1.
		eff := w.Accuracy*(1-difficulty) + 0.5*difficulty
		if correct != "" && m.rng.Float64() < eff {
			out[f.Name] = m.addFormatNoise(correct)
			continue
		}
		// Wrong (or unknown-truth) answer.
		switch {
		case len(wrongs) > 0:
			out[f.Name] = m.addFormatNoise(wrongs[m.rng.Intn(len(wrongs))])
		case f.Kind == crowd.FieldChoice && len(f.Options) > 0:
			out[f.Name] = f.Options[m.rng.Intn(len(f.Options))]
		default:
			out[f.Name] = fmt.Sprintf("unsure-%d", m.rng.Intn(1000))
		}
	}
	return out
}

// addFormatNoise occasionally damages formatting (case, padding) so quality
// control has real cleansing to do.
func (m *Market) addFormatNoise(s string) string {
	if m.rng.Float64() >= m.cfg.FormatNoiseRate {
		return s
	}
	switch m.rng.Intn(4) {
	case 0:
		return strings.ToUpper(s)
	case 1:
		return strings.ToLower(s)
	case 2:
		return "  " + s
	default:
		return s + "  "
	}
}

func garbageAnswer(rng *rand.Rand) string {
	junk := []string{"", "asdf", "idk", "???", "n/a", "good"}
	return junk[rng.Intn(len(junk))]
}

// Status reports a group's progress.
func (m *Market) Status(id crowd.GroupID) (crowd.GroupStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[id]
	if !ok {
		return crowd.GroupStatus{}, fmt.Errorf("sim: unknown group %s", id)
	}
	st := crowd.GroupStatus{Posted: len(g.hits), Expired: g.expired, Submitted: len(g.assignments)}
	perHIT := make(map[string]int)
	for _, a := range g.assignments {
		perHIT[a.HITID]++
	}
	for _, hs := range g.hits {
		if hs.early || perHIT[hs.hit.ID] >= g.spec.Assignments {
			st.Completed++
		}
	}
	return st, nil
}

// Results returns copies of the group's submitted assignments, ordered by
// submission time.
func (m *Market) Results(id crowd.GroupID) ([]*crowd.Assignment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[id]
	if !ok {
		return nil, fmt.Errorf("sim: unknown group %s", id)
	}
	out := make([]*crowd.Assignment, len(g.assignments))
	for i, a := range g.assignments {
		cp := *a
		cp.Answers = make(map[string]string, len(a.Answers))
		for k, v := range a.Answers {
			cp.Answers[k] = v
		}
		out[i] = &cp
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SubmittedAt < out[j].SubmittedAt })
	return out, nil
}

// Approve pays the worker the group reward plus bonus and returns the
// amount paid, so callers layering fees on top (the AMT commission) see
// the exact payment without racing on aggregate counters.
func (m *Market) Approve(assignmentID string, bonus crowd.Cents) (crowd.Cents, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, g := range m.groups {
		if a, ok := g.byAssignID[assignmentID]; ok {
			if a.Status == crowd.AssignmentApproved {
				return 0, fmt.Errorf("sim: assignment %s already approved", assignmentID)
			}
			a.Status = crowd.AssignmentApproved
			pay := g.spec.Reward + bonus
			m.totalSpent += pay
			if w := m.workerByID(a.WorkerID); w != nil {
				w.Earned += pay
			}
			return pay, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown assignment %s", assignmentID)
}

// Reject refuses an assignment without pay.
func (m *Market) Reject(assignmentID, _ string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, g := range m.groups {
		if a, ok := g.byAssignID[assignmentID]; ok {
			a.Status = crowd.AssignmentRejected
			return nil
		}
	}
	return fmt.Errorf("sim: unknown assignment %s", assignmentID)
}

// Expire force-expires a group.
func (m *Market) Expire(id crowd.GroupID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[id]
	if !ok {
		return fmt.Errorf("sim: unknown group %s", id)
	}
	g.expired = true
	return nil
}

func (m *Market) workerByID(id string) *Worker {
	for _, w := range m.workers {
		if w.ID == id {
			return w
		}
	}
	return nil
}

// WorkerStats returns per-worker completion counts, most active first —
// the worker-affinity distribution of experiment E3.
func (m *Market) WorkerStats() []Worker {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Worker
	for _, w := range m.workers {
		if w.Completed > 0 {
			out = append(out, *w)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Completed != out[j].Completed {
			return out[i].Completed > out[j].Completed
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// TotalSpent reports all money paid out so far.
func (m *Market) TotalSpent() crowd.Cents {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalSpent
}

// TotalSubmitted reports all assignments ever submitted.
func (m *Market) TotalSubmitted() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalSubmitted
}
