// Package quality implements CrowdDB's quality control (paper §3.2.1):
// "human inputs are inherently error prone and diverse in formats" —
// answers are first cleansed (normalized) and then resolved by majority
// vote across a HIT's replicated assignments. The package also tracks
// per-worker agreement scores the Worker Relationship Manager consults.
package quality

import (
	"sort"
	"strings"
	"sync"
	"unicode"
)

// Normalize cleanses one raw crowd answer: trims, collapses inner
// whitespace, and lower-cases. Votes compare normalized forms, but the
// winning *display* value is the most common raw spelling of the winning
// normalized form.
func Normalize(s string) string {
	s = strings.TrimSpace(s)
	var sb strings.Builder
	lastSpace := false
	for _, r := range s {
		if unicode.IsSpace(r) {
			if !lastSpace {
				sb.WriteByte(' ')
			}
			lastSpace = true
			continue
		}
		lastSpace = false
		sb.WriteRune(unicode.ToLower(r))
	}
	return sb.String()
}

// garbage is the set of normalized answers considered unusable noise.
var garbage = map[string]bool{
	"": true, "asdf": true, "idk": true, "i don't know": true, "dont know": true,
	"???": true, "?": true, "n/a": true, "na": true, "none": true, "-": true,
	"good": true, "unknown": true,
}

// IsGarbage reports whether a raw answer is unusable noise. Answers like
// "unsure-123" (the simulator's confused-worker marker) also count.
func IsGarbage(raw string) bool {
	n := Normalize(raw)
	return garbage[n] || strings.HasPrefix(n, "unsure-")
}

// Vote is one worker's answer to one field.
type Vote struct {
	WorkerID string
	Answer   string
}

// Decision is the outcome of majority voting over one field.
type Decision struct {
	// Value is the winning answer, in its most common raw spelling.
	Value string
	// Votes is how many (non-garbage) votes the winner received.
	Votes int
	// Total is the number of usable votes cast.
	Total int
	// Confidence is Votes/Total (0 when no usable votes).
	Confidence float64
	// Agreed lists workers who voted for the winner; Disagreed the rest.
	Agreed, Disagreed []string
	// Quorum reports whether the winner met the required majority.
	Quorum bool
}

// MajorityVote resolves a field's replicated answers. minAgree is the
// absolute number of matching votes required for quorum (the paper's
// operators use replication/2+1); a minAgree of 0 means "plurality of
// usable votes wins".
func MajorityVote(votes []Vote, minAgree int) Decision {
	type bucket struct {
		count int
		raw   map[string]int // raw spelling -> occurrences
		who   []string
	}
	buckets := make(map[string]*bucket)
	var usable int
	var d Decision
	for _, v := range votes {
		if IsGarbage(v.Answer) {
			d.Disagreed = append(d.Disagreed, v.WorkerID)
			continue
		}
		usable++
		n := Normalize(v.Answer)
		b := buckets[n]
		if b == nil {
			b = &bucket{raw: make(map[string]int)}
			buckets[n] = b
		}
		b.count++
		b.raw[strings.TrimSpace(v.Answer)]++
		b.who = append(b.who, v.WorkerID)
	}
	d.Total = usable
	if usable == 0 {
		return d
	}
	// Deterministic winner: highest count, ties broken by normalized form.
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		bi, bj := buckets[keys[i]], buckets[keys[j]]
		if bi.count != bj.count {
			return bi.count > bj.count
		}
		return keys[i] < keys[j]
	})
	win := buckets[keys[0]]
	d.Votes = win.count
	d.Confidence = float64(win.count) / float64(usable)
	d.Agreed = win.who
	// Most common raw spelling of the winner.
	var bestRaw string
	bestN := -1
	raws := make([]string, 0, len(win.raw))
	for r := range win.raw {
		raws = append(raws, r)
	}
	sort.Strings(raws)
	for _, r := range raws {
		if win.raw[r] > bestN {
			bestN = win.raw[r]
			bestRaw = r
		}
	}
	d.Value = bestRaw
	for _, k := range keys[1:] {
		d.Disagreed = append(d.Disagreed, buckets[k].who...)
	}
	if minAgree <= 0 {
		d.Quorum = true
	} else {
		d.Quorum = win.count >= minAgree
	}
	return d
}

// MajorityFor returns the standard quorum for a replication factor:
// floor(n/2)+1.
func MajorityFor(replication int) int { return replication/2 + 1 }

// WeightedVote resolves a field's replicated answers with votes weighted
// by each worker's agreement score (the SIGMOD paper sketches score-based
// quality control as the step beyond plain majority). weight returns a
// worker's weight; the Tracker's Score is the natural choice. Quorum is
// met when the winner's weight share reaches minShare (e.g. 0.5).
func WeightedVote(votes []Vote, weight func(workerID string) float64, minShare float64) Decision {
	type bucket struct {
		weight float64
		count  int
		raw    map[string]int
		who    []string
	}
	buckets := make(map[string]*bucket)
	var d Decision
	totalWeight := 0.0
	for _, v := range votes {
		if IsGarbage(v.Answer) {
			d.Disagreed = append(d.Disagreed, v.WorkerID)
			continue
		}
		d.Total++
		w := weight(v.WorkerID)
		if w <= 0 {
			w = 0.01
		}
		totalWeight += w
		n := Normalize(v.Answer)
		b := buckets[n]
		if b == nil {
			b = &bucket{raw: make(map[string]int)}
			buckets[n] = b
		}
		b.weight += w
		b.count++
		b.raw[strings.TrimSpace(v.Answer)]++
		b.who = append(b.who, v.WorkerID)
	}
	if d.Total == 0 {
		return d
	}
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		bi, bj := buckets[keys[i]], buckets[keys[j]]
		if bi.weight != bj.weight {
			return bi.weight > bj.weight
		}
		return keys[i] < keys[j]
	})
	win := buckets[keys[0]]
	d.Votes = win.count
	d.Confidence = win.weight / totalWeight
	d.Agreed = win.who
	var bestRaw string
	bestN := -1
	raws := make([]string, 0, len(win.raw))
	for r := range win.raw {
		raws = append(raws, r)
	}
	sort.Strings(raws)
	for _, r := range raws {
		if win.raw[r] > bestN {
			bestN = win.raw[r]
			bestRaw = r
		}
	}
	d.Value = bestRaw
	for _, k := range keys[1:] {
		d.Disagreed = append(d.Disagreed, buckets[k].who...)
	}
	d.Quorum = d.Confidence >= minShare
	return d
}

// Tracker accumulates per-worker agreement statistics across decisions. A
// worker's score is the Laplace-smoothed fraction of votes that agreed with
// the majority — CrowdDB's cheap proxy for worker reliability.
type Tracker struct {
	mu    sync.Mutex
	stats map[string]*WorkerQuality
}

// WorkerQuality is one worker's running agreement record.
type WorkerQuality struct {
	WorkerID  string
	Agreed    int
	Disagreed int
}

// Score is the smoothed agreement rate in (0,1).
func (w *WorkerQuality) Score() float64 {
	return (float64(w.Agreed) + 1) / (float64(w.Agreed+w.Disagreed) + 2)
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{stats: make(map[string]*WorkerQuality)} }

// Record folds one decision's agreement lists into the tracker.
func (t *Tracker) Record(d Decision) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, w := range d.Agreed {
		t.get(w).Agreed++
	}
	for _, w := range d.Disagreed {
		t.get(w).Disagreed++
	}
}

func (t *Tracker) get(id string) *WorkerQuality {
	wq := t.stats[id]
	if wq == nil {
		wq = &WorkerQuality{WorkerID: id}
		t.stats[id] = wq
	}
	return wq
}

// Score returns a worker's current agreement score (0.5 for unknowns).
func (t *Tracker) Score(workerID string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if wq, ok := t.stats[workerID]; ok {
		return wq.Score()
	}
	return 0.5
}

// Workers returns all tracked workers, lowest score first (the review queue
// the WRM shows the requester).
func (t *Tracker) Workers() []WorkerQuality {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]WorkerQuality, 0, len(t.stats))
	for _, wq := range t.stats {
		out = append(out, *wq)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Score(), out[j].Score()
		if si != sj {
			return si < sj
		}
		return out[i].WorkerID < out[j].WorkerID
	})
	return out
}
