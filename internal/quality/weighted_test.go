package quality

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestWeightedVoteBasic(t *testing.T) {
	weight := func(id string) float64 {
		if id == "expert" {
			return 0.95
		}
		return 0.3
	}
	// Two low-scoring workers vs one expert: the expert wins.
	d := WeightedVote([]Vote{
		{WorkerID: "spam1", Answer: "wrong"},
		{WorkerID: "spam2", Answer: "wrong"},
		{WorkerID: "expert", Answer: "right"},
	}, weight, 0.5)
	if d.Value != "right" {
		t.Errorf("expert must outweigh two spammers: %+v", d)
	}
	if !d.Quorum {
		t.Errorf("0.95/(0.95+0.6) > 0.5 must reach quorum: %+v", d)
	}
}

func TestWeightedVoteFallsBackToMajorityWithEqualWeights(t *testing.T) {
	uniform := func(string) float64 { return 0.5 }
	votes := []Vote{
		{WorkerID: "a", Answer: "x"},
		{WorkerID: "b", Answer: "x"},
		{WorkerID: "c", Answer: "y"},
	}
	wd := WeightedVote(votes, uniform, 0.5)
	md := MajorityVote(votes, 2)
	if wd.Value != md.Value {
		t.Errorf("uniform weights must agree with majority: %q vs %q", wd.Value, md.Value)
	}
}

func TestWeightedVoteGarbageAndZeroWeights(t *testing.T) {
	d := WeightedVote([]Vote{
		{WorkerID: "w1", Answer: "asdf"},
		{WorkerID: "w2", Answer: "real"},
	}, func(string) float64 { return 0 }, 0.5) // zero weights clamp to epsilon
	if d.Total != 1 || d.Value != "real" || !d.Quorum {
		t.Errorf("%+v", d)
	}
	empty := WeightedVote(nil, func(string) float64 { return 1 }, 0.5)
	if empty.Total != 0 || empty.Quorum {
		t.Errorf("%+v", empty)
	}
}

// With a tracked population of mixed reliability, weighted voting beats
// plain majority on adversarial splits (the extension's whole point).
func TestWeightedVoteBeatsMajorityWithTrackedScores(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := NewTracker()
	// Train the tracker: good workers agree with majorities, bad disagree.
	for i := 0; i < 60; i++ {
		tr.Record(MajorityVote([]Vote{
			{WorkerID: "good1", Answer: "t"},
			{WorkerID: "good2", Answer: "t"},
			{WorkerID: "bad1", Answer: fmt.Sprintf("junk%d", i)},
			{WorkerID: "bad2", Answer: fmt.Sprintf("junk%d", i+1)},
		}, 2))
	}
	trials, weightedRight, majorityRight := 500, 0, 0
	for i := 0; i < trials; i++ {
		// Adversarial split: both bad workers agree on a wrong answer,
		// good1 knows the truth, good2 abstains (garbage).
		votes := []Vote{
			{WorkerID: "good1", Answer: "truth"},
			{WorkerID: "good2", Answer: "idk"},
			{WorkerID: "bad1", Answer: "lie"},
			{WorkerID: "bad2", Answer: "lie"},
		}
		rng.Shuffle(len(votes), func(a, b int) { votes[a], votes[b] = votes[b], votes[a] })
		if WeightedVote(votes, tr.Score, 0.5).Value == "truth" {
			weightedRight++
		}
		if MajorityVote(votes, 2).Value == "truth" {
			majorityRight++
		}
	}
	if weightedRight <= majorityRight {
		t.Errorf("weighted %d/%d must beat majority %d/%d", weightedRight, trials, majorityRight, trials)
	}
	if weightedRight < trials {
		t.Errorf("weighted vote should always recover truth here: %d/%d", weightedRight, trials)
	}
}
