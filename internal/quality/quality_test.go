package quality

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"  UC Berkeley ": "uc berkeley",
		"UC   BERKELEY":  "uc berkeley",
		"uc\tberkeley":   "uc berkeley",
		"":               "",
		" A  B\n C ":     "a b c",
		"CrowdDB":        "crowddb",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIsGarbage(t *testing.T) {
	for _, g := range []string{"", "  ", "asdf", "IDK", "N/A", "???", "unsure-42"} {
		if !IsGarbage(g) {
			t.Errorf("%q should be garbage", g)
		}
	}
	for _, ok := range []string{"UC Berkeley", "42", "yes"} {
		if IsGarbage(ok) {
			t.Errorf("%q should not be garbage", ok)
		}
	}
}

func votes(vs ...string) []Vote {
	out := make([]Vote, len(vs))
	for i, v := range vs {
		out[i] = Vote{WorkerID: fmt.Sprintf("W%d", i), Answer: v}
	}
	return out
}

func TestMajorityVoteBasic(t *testing.T) {
	d := MajorityVote(votes("UC Berkeley", "uc berkeley", "Stanford"), 2)
	if d.Value != "UC Berkeley" && d.Value != "uc berkeley" {
		t.Errorf("winner: %q", d.Value)
	}
	if d.Votes != 2 || d.Total != 3 || !d.Quorum {
		t.Errorf("%+v", d)
	}
	if len(d.Agreed) != 2 || len(d.Disagreed) != 1 {
		t.Errorf("agree/disagree: %v / %v", d.Agreed, d.Disagreed)
	}
}

func TestMajorityVotePrefersCommonRawSpelling(t *testing.T) {
	d := MajorityVote(votes("UC Berkeley", "UC Berkeley", "uc berkeley"), 0)
	if d.Value != "UC Berkeley" {
		t.Errorf("display spelling: %q", d.Value)
	}
}

func TestMajorityVoteGarbageExcluded(t *testing.T) {
	d := MajorityVote(votes("asdf", "", "Berkeley", "berkeley"), 2)
	if d.Total != 2 || d.Votes != 2 || !d.Quorum {
		t.Errorf("%+v", d)
	}
	if len(d.Disagreed) != 2 {
		t.Errorf("garbage voters must be recorded as disagreeing: %v", d.Disagreed)
	}
}

func TestMajorityVoteNoQuorum(t *testing.T) {
	d := MajorityVote(votes("a", "b", "c"), 2)
	if d.Quorum {
		t.Error("three-way split must fail a quorum of 2")
	}
	if d.Confidence > 0.34 {
		t.Errorf("confidence: %f", d.Confidence)
	}
}

func TestMajorityVoteAllGarbage(t *testing.T) {
	d := MajorityVote(votes("asdf", ""), 1)
	if d.Total != 0 || d.Value != "" || d.Quorum {
		t.Errorf("%+v", d)
	}
}

func TestMajorityVoteDeterministicTieBreak(t *testing.T) {
	d1 := MajorityVote(votes("alpha", "beta"), 0)
	d2 := MajorityVote(votes("beta", "alpha"), 0)
	if d1.Value != d2.Value {
		t.Errorf("tie break must not depend on order: %q vs %q", d1.Value, d2.Value)
	}
	if d1.Value != "alpha" {
		t.Errorf("lexicographic tie break: %q", d1.Value)
	}
}

func TestMajorityFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 7: 4}
	for n, want := range cases {
		if got := MajorityFor(n); got != want {
			t.Errorf("MajorityFor(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: the winner always has at least as many votes as any other
// answer, and Votes <= Total <= len(votes).
func TestMajorityVoteInvariants(t *testing.T) {
	check := func(raw []uint8) bool {
		vs := make([]Vote, len(raw))
		counts := map[string]int{}
		for i, r := range raw {
			ans := fmt.Sprintf("ans%d", r%5)
			vs[i] = Vote{WorkerID: fmt.Sprintf("W%d", i), Answer: ans}
			counts[ans]++
		}
		d := MajorityVote(vs, 0)
		if d.Total != len(vs) || d.Votes > d.Total {
			return false
		}
		for _, c := range counts {
			if c > d.Votes {
				return false
			}
		}
		return len(vs) == 0 || counts[Normalize(d.Value)] == d.Votes
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: majority vote over replicated noisy votes recovers the truth
// more often as replication grows — the paper's core QC claim (E4 tests the
// full curve; this is the monotonicity smoke check).
func TestReplicationImprovesAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	accuracyAt := func(replication int) float64 {
		correct := 0
		const trials = 2000
		for i := 0; i < trials; i++ {
			vs := make([]Vote, replication)
			for j := range vs {
				if rng.Float64() < 0.7 {
					vs[j] = Vote{WorkerID: "w", Answer: "truth"}
				} else {
					vs[j] = Vote{WorkerID: "w", Answer: fmt.Sprintf("wrong%d", rng.Intn(3))}
				}
			}
			if MajorityVote(vs, 0).Value == "truth" {
				correct++
			}
		}
		return float64(correct) / trials
	}
	a1, a5 := accuracyAt(1), accuracyAt(5)
	if a5 <= a1 {
		t.Errorf("replication must help: 1->%.3f 5->%.3f", a1, a5)
	}
	if a5 < 0.85 {
		t.Errorf("5-vote accuracy too low: %.3f", a5)
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker()
	d := MajorityVote([]Vote{
		{WorkerID: "good", Answer: "x"},
		{WorkerID: "good2", Answer: "x"},
		{WorkerID: "bad", Answer: "y"},
	}, 2)
	tr.Record(d)
	tr.Record(d)
	if g, b := tr.Score("good"), tr.Score("bad"); g <= b {
		t.Errorf("good %f should outscore bad %f", g, b)
	}
	if s := tr.Score("never-seen"); s != 0.5 {
		t.Errorf("unknown worker score: %f", s)
	}
	ws := tr.Workers()
	if len(ws) != 3 || ws[0].WorkerID != "bad" {
		t.Errorf("review queue order: %+v", ws)
	}
}
