// Package crowddb is a Go reproduction of CrowdDB, the hybrid
// human/machine query processor of "CrowdDB: Query Processing with the
// VLDB Crowd" (Feng et al., VLDB 2011) and its SIGMOD 2011 companion.
//
// CrowdDB answers SQL queries that a normal database cannot: when data is
// missing, when entity resolution needs human judgement, or when results
// must be ranked by subjective criteria. It extends SQL with CrowdSQL —
// the CROWD keyword on tables and columns, the CNULL value, and the
// CROWDEQUAL / CROWDORDER built-ins — and extends the query engine with
// three crowd operators (CrowdProbe, CrowdJoin, CrowdCompare) that post
// tasks to a crowdsourcing platform, quality-control the answers by
// majority vote, and memorize them in the store.
//
// Two platforms are provided, both backed by a deterministic discrete-
// event worker simulator standing in for the live crowds of the paper:
// a simulated Amazon Mechanical Turk and the paper's locality-aware
// mobile platform (conference attendees inside a geo-fence).
//
// Quickstart:
//
//	db, _ := crowddb.Open(crowddb.Config{Platform: crowddb.NewAMTPlatform(1), Oracle: myOracle})
//	db.Exec(`CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)`)
//	db.Exec(`INSERT INTO Talk (title) VALUES ('CrowdDB')`)
//	res, _ := db.Query(`SELECT abstract FROM Talk WHERE title = 'CrowdDB'`)
//	// res.Rows[0][0] now holds the crowd-provided abstract.
package crowddb

import (
	"context"
	"fmt"
	"strings"

	"crowddb/internal/core"
	"crowddb/internal/crowd"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/crowd/mobile"
	"crowddb/internal/crowd/model"
	"crowddb/internal/exec"
	"crowddb/internal/optimizer"
	"crowddb/internal/sqltypes"
	"crowddb/internal/taskmgr"
	"crowddb/internal/wrm"
)

// Re-exported types: the public API surfaces the engine's own types via
// aliases so applications in this module (and its examples) use one
// vocabulary.
type (
	// Config assembles a CrowdDB instance; see the field docs on
	// core.Config.
	Config = core.Config
	// Result is the outcome of one statement: columns+rows for SELECT,
	// affected count for DML, plan text for EXPLAIN.
	Result = core.Result
	// Platform is a crowdsourcing backend (AMT, mobile, or custom).
	Platform = crowd.Platform
	// Oracle supplies simulation-only ground truth for crowd tasks.
	Oracle = taskmgr.Oracle
	// TaskConfig tunes task posting (reward, replication, deadlines).
	TaskConfig = taskmgr.Config
	// PaymentPolicy is the Worker Relationship Manager's payout policy.
	PaymentPolicy = wrm.PaymentPolicy
	// OptimizerOptions switches individual rewrite rules (ablations).
	OptimizerOptions = optimizer.Options
	// Value is a SQL value (strings, ints, floats, bools, NULL, CNULL).
	Value = sqltypes.Value
	// ExecStats counts a statement's crowd activity.
	ExecStats = exec.Stats
	// ExecOpts tunes one Execute call (budget, streaming sink, stats
	// observers); see core.ExecOpts.
	ExecOpts = core.ExecOpts
	// RowSink consumes streamed result rows (ExecOpts.Sink).
	RowSink = core.RowSink
)

// DB is a CrowdDB database handle. It is safe for concurrent use; crowd-
// facing statements serialize internally.
type DB struct {
	eng *core.Engine
}

// Open creates or reopens a CrowdDB instance. With cfg.DataDir set, the
// schema, data, and crowd answers persist across Open/Close cycles. With
// cfg.Platform nil the database runs without crowdsourcing (CNULLs stay
// CNULL, comparisons resolve to unknown).
func Open(cfg Config) (*DB, error) {
	eng, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}

// Close releases the database (flushes and closes the WAL).
func (db *DB) Close() error { return db.eng.Close() }

// Checkpoint snapshots the store and truncates the WAL.
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// Exec runs a CrowdSQL script (one or more ;-separated statements) and
// returns the last statement's result.
func (db *DB) Exec(sql string) (*Result, error) { return db.eng.Exec(sql) }

// Query runs a single SELECT.
func (db *DB) Query(sql string) (*Result, error) { return db.eng.Query(sql) }

// Execute runs a CrowdSQL script under ctx: cancelling ctx stops the
// running statement mid-crowd-wait (no new HITs are posted, paid work
// settles). Use ExecuteOpts to additionally stream rows out as they are
// produced.
func (db *DB) Execute(ctx context.Context, sql string) (*Result, error) {
	return db.eng.Execute(ctx, sql, core.DefaultExecOpts())
}

// ExecuteOpts is Execute with per-call options (budget, streaming sink,
// stats observers).
func (db *DB) ExecuteOpts(ctx context.Context, sql string, opts ExecOpts) (*Result, error) {
	return db.eng.Execute(ctx, sql, opts)
}

// Engine exposes the underlying engine for advanced integrations (the
// Form Editor, WRM console, and benchmark harness use it).
func (db *DB) Engine() *core.Engine { return db.eng }

// NewAMTPlatform returns the simulated Amazon Mechanical Turk platform,
// deterministically seeded.
func NewAMTPlatform(seed int64) Platform { return amt.NewDefault(seed) }

// NewMobilePlatform returns the simulated locality-aware mobile platform
// with the paper's VLDB 2011 venue crowd, deterministically seeded.
func NewMobilePlatform(seed int64) Platform { return mobile.New(mobile.DefaultConfig(seed)) }

// NewModelPlatform returns the simulated model-worker platform with the
// sharp (accurate, calibrated) profile, deterministically seeded. Use it
// as Config.Platform for model-only answering, or as
// Config.Tasks.ModelPlatform to route model-first with human escalation.
func NewModelPlatform(seed int64) Platform {
	return model.New(model.Config{Seed: seed, Profile: model.Sharp()})
}

// FormatTable renders a result as an aligned text table (the REPL's and
// the examples' output format).
func FormatTable(res *Result) string {
	if res == nil {
		return ""
	}
	if res.Plan != "" {
		return res.Plan
	}
	if len(res.Columns) == 0 {
		return fmt.Sprintf("%d row(s) affected\n", res.Affected)
	}
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for ri, row := range res.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(v)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(v)))
		}
		sb.WriteByte('\n')
	}
	writeRow(res.Columns)
	total := 0
	for _, w := range widths {
		total += w + 3
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&sb, "(%d rows)\n", len(res.Rows))
	return sb.String()
}
