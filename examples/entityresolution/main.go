// Entity resolution: the paper's second human capability (§1, "Comparing
// data") — people easily tell that "IBM" and "International Business
// Machines" are the same company, which no exact-match predicate can.
// CROWDEQUAL (and its ~= shorthand) sends those judgements to the crowd,
// majority-votes them, and memorizes the verdicts so each pair is paid
// for once.
package main

import (
	"fmt"
	"log"

	"crowddb"
	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

func main() {
	companies := workload.NewCompanies(8, 99)
	db, err := crowddb.Open(crowddb.Config{
		Platform: crowddb.NewAMTPlatform(99),
		Oracle:   companies.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db, `CREATE TABLE company (name STRING PRIMARY KEY, hq STRING)`)
	for _, c := range companies.List {
		must(db, "INSERT INTO company VALUES ("+
			sqltypes.NewString(c.Canonical).SQLLiteral()+", "+
			sqltypes.NewString(c.HQ).SQLLiteral()+")")
	}

	// Users search with abbreviations and misspellings; exact equality
	// finds nothing, crowd equality resolves the entity.
	for _, c := range companies.List[:3] {
		variant := c.Variants[0]
		fmt.Printf("== looking up %q (an alias of %q) ==\n", variant, c.Canonical)
		exact, err := db.Query("SELECT hq FROM company WHERE name = " + sqltypes.NewString(variant).SQLLiteral())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exact match: %d rows (the closed-world answer)\n", len(exact.Rows))

		res, err := db.Query("SELECT name, hq FROM company WHERE name ~= " + sqltypes.NewString(variant).SQLLiteral())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(crowddb.FormatTable(res))
		fmt.Printf("crowd comparisons: %d (cached: %d)\n\n", res.Stats.Comparisons, res.Stats.CacheHits)
	}
}

func must(db *crowddb.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
