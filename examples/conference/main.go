// Conference: the demo paper's running example (§2) end to end —
// Example 1's crowd columns (missing abstracts and attendance), Example
// 2's open-world CROWD table of notable attendees joined through its
// foreign key (CrowdJoin), and Example 3's CROWDORDER ranking of the
// most-liked talks.
package main

import (
	"fmt"
	"log"

	"crowddb"
	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

func main() {
	conf := workload.NewConference(12, 2011)
	db, err := crowddb.Open(crowddb.Config{
		Platform: crowddb.NewAMTPlatform(2011),
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Example 1 (paper §2.1): crowd columns.
	must(db, `CREATE TABLE Talk (
		title STRING PRIMARY KEY,
		abstract CROWD STRING,
		nb_attendees CROWD INTEGER ANNOTATION 'How many people were in the audience?' )`)
	// Example 2 (paper §2.1): a CROWD table with a foreign key.
	must(db, `CREATE CROWD TABLE NotableAttendee (
		name STRING PRIMARY KEY,
		title STRING,
		FOREIGN KEY (title) REF Talk(title) )`)
	for _, talk := range conf.Talks[:8] {
		must(db, "INSERT INTO Talk (title) VALUES ("+sqltypes.NewString(talk.Title).SQLLiteral()+")")
	}

	fmt.Println("== Example 1: crowdsource a missing abstract ==")
	title := sqltypes.NewString(conf.Talks[0].Title).SQLLiteral()
	show(db, "SELECT abstract FROM Talk WHERE title = "+title)

	fmt.Println("== Example 1b: which talks drew more than 100 people? ==")
	show(db, "SELECT title, nb_attendees FROM Talk WHERE nb_attendees > 100 ORDER BY nb_attendees DESC")

	fmt.Println("== Example 2: who notable attended this talk? (CrowdJoin) ==")
	show(db, "SELECT n.name FROM Talk t JOIN NotableAttendee n ON n.title = t.title WHERE t.title = "+title)

	fmt.Println("== Example 3: the 5 most-liked talks (CROWDORDER) ==")
	show(db, `SELECT title FROM Talk ORDER BY CROWDORDER(title, "Which talk did you like better") LIMIT 5`)

	if tasks := db.Engine().Tasks(); tasks != nil {
		s := tasks.Stats()
		fmt.Printf("session totals: %d HIT groups, %d HITs, %d assignments, crowd time %s, spend %s\n",
			s.GroupsPosted, s.HITsPosted, s.AssignmentsIn, s.CrowdTime, s.ApprovedSpend)
	}
}

func show(db *crowddb.DB, sql string) {
	res, err := db.Query(sql)
	if err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
	fmt.Print(crowddb.FormatTable(res))
	fmt.Println()
}

func must(db *crowddb.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
