// Quickstart: the paper's opening scenario (§1). A traditional database
// returns an empty answer for
//
//	SELECT abstract FROM paper WHERE title = 'CrowdDB'
//
// when the abstract was never entered. CrowdDB instead compiles the query
// into a CrowdProbe task, posts it to the (simulated) Mechanical Turk,
// majority-votes the workers' answers, memorizes the result, and returns
// a complete row — and a second run never asks the crowd again.
package main

import (
	"fmt"
	"log"

	"crowddb"
	"crowddb/internal/crowd"
	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

func main() {
	// The oracle stands in for real human knowledge: it tells SIMULATED
	// workers what the true abstract is. A real deployment has no oracle —
	// people just know things.
	oracle := workload.NewOracle()
	oracle.RegisterProbe("paper", func(known map[string]sqltypes.Value, ask []string) *crowd.SimTruth {
		if known["title"].Str() != "CrowdDB" {
			return nil
		}
		return &crowd.SimTruth{Truth: map[string]string{
			"abstract": "Databases often give incorrect answers when data are missing. " +
				"CrowdDB uses crowdsourcing to integrate human input for processing such queries.",
		}}
	})

	db, err := crowddb.Open(crowddb.Config{
		Platform: crowddb.NewAMTPlatform(1),
		Oracle:   oracle,
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db, `CREATE TABLE paper (
		title STRING PRIMARY KEY,
		abstract CROWD STRING ANNOTATION 'Please find the abstract of this paper' )`)
	must(db, `INSERT INTO paper (title) VALUES ('CrowdDB')`)

	fmt.Println("-- a normal DBMS would return an empty abstract here --")
	res, err := db.Query(`SELECT abstract FROM paper WHERE title = 'CrowdDB'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(crowddb.FormatTable(res))
	fmt.Printf("crowd work: %d probe task(s)\n\n", res.Stats.ProbeRequests)

	fmt.Println("-- run it again: the answer was memorized, the crowd rests --")
	res, err = db.Query(`SELECT abstract FROM paper WHERE title = 'CrowdDB'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(crowddb.FormatTable(res))
	fmt.Printf("crowd work: %d probe task(s)\n", res.Stats.ProbeRequests)
}

func must(db *crowddb.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
