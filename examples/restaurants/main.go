// Restaurants: the demo's mobile scenario (§4) — "nearby restaurant
// recommendations" answered by the VLDB crowd on the locality-aware
// mobile platform. The Restaurant CROWD table starts almost empty;
// conference attendees (geo-fenced simulated workers) contribute entries
// and then rank them with CROWDORDER.
package main

import (
	"fmt"
	"log"

	"crowddb"
	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

func main() {
	rests := workload.NewRestaurants(10, 7)
	db, err := crowddb.Open(crowddb.Config{
		// The mobile platform fences tasks to the conference venue: only
		// attendees (who actually know the neighborhood) answer.
		Platform: crowddb.NewMobilePlatform(7),
		Oracle:   rests.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db, `CREATE CROWD TABLE Restaurant (
		name STRING PRIMARY KEY,
		cuisine STRING ANNOTATION 'What kind of food do they serve?' )
		ANNOTATION 'Restaurants within walking distance of the VLDB venue'`)
	// Seed with a single known entry; the rest is open world.
	must(db, "INSERT INTO Restaurant VALUES ("+
		sqltypes.NewString(rests.List[0].Name).SQLLiteral()+", "+
		sqltypes.NewString(rests.List[0].Cuisine).SQLLiteral()+")")

	fmt.Println("== ask the VLDB crowd for nearby restaurants (bounded by LIMIT) ==")
	res, err := db.Query(`SELECT name, cuisine FROM Restaurant LIMIT 8`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(crowddb.FormatTable(res))
	fmt.Printf("crowd work: %d tuple solicitations\n\n", res.Stats.NewTupleRequests)

	fmt.Println("== rank what we collected: where should we eat tonight? ==")
	res, err = db.Query(`SELECT name FROM Restaurant
		ORDER BY CROWDORDER(name, "Which restaurant would you rather eat at") LIMIT 3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(crowddb.FormatTable(res))
	fmt.Printf("crowd work: %d pairwise comparisons (%d cached)\n",
		res.Stats.Comparisons, res.Stats.CacheHits)
}

func must(db *crowddb.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
