package crowddb

import (
	"strings"
	"testing"

	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

func openDemo(t *testing.T, seed int64) (*DB, *workload.Conference) {
	t.Helper()
	conf := workload.NewConference(10, seed)
	db, err := Open(Config{
		Platform: NewAMTPlatform(seed),
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Exec(`CREATE TABLE Talk (
		title STRING PRIMARY KEY,
		abstract CROWD STRING,
		nb_attendees CROWD INTEGER )`); err != nil {
		t.Fatal(err)
	}
	for _, talk := range conf.Talks[:5] {
		if _, err := db.Exec("INSERT INTO Talk (title) VALUES (" +
			sqltypes.NewString(talk.Title).SQLLiteral() + ")"); err != nil {
			t.Fatal(err)
		}
	}
	return db, conf
}

func TestPublicAPIQuickstart(t *testing.T) {
	db, conf := openDemo(t, 21)
	res, err := db.Query("SELECT abstract FROM Talk WHERE title = " +
		sqltypes.NewString(conf.Talks[0].Title).SQLLiteral())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].IsUnknown() {
		t.Fatalf("crowd answer missing: %v", res.Rows)
	}
}

func TestFormatTable(t *testing.T) {
	db, _ := openDemo(t, 22)
	res, err := db.Query("SELECT title FROM Talk ORDER BY title LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable(res)
	if !strings.Contains(out, "title") || !strings.Contains(out, "(2 rows)") {
		t.Errorf("format:\n%s", out)
	}
	// DML formatting.
	res, _ = db.Exec("INSERT INTO Talk (title) VALUES ('zz-extra')")
	if got := FormatTable(res); !strings.Contains(got, "1 row(s) affected") {
		t.Errorf("dml format: %q", got)
	}
	// Explain formatting.
	res, _ = db.Exec("EXPLAIN SELECT title FROM Talk")
	if got := FormatTable(res); !strings.Contains(got, "Scan") {
		t.Errorf("plan format: %q", got)
	}
	if FormatTable(nil) != "" {
		t.Error("nil result formats empty")
	}
}

func TestMobilePlatformConstructor(t *testing.T) {
	p := NewMobilePlatform(1)
	if p.Name() != "mobile" {
		t.Errorf("platform name: %s", p.Name())
	}
	if NewAMTPlatform(1).Name() != "amt" {
		t.Error("amt name")
	}
}

func TestOpenWithoutPlatform(t *testing.T) {
	db, err := Open(Config{AllowUnbounded: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (x INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT COUNT(*) FROM t")
	if err != nil || res.Rows[0][0].Int() != 2 {
		t.Errorf("crowd-free engine: %v %v", res, err)
	}
}

// TestExplainReportsCosts: EXPLAIN annotates every operator with the cost
// model's predicted cents and seconds, plus the statement total.
func TestExplainReportsCosts(t *testing.T) {
	db, _ := openDemo(t, 31)
	res, err := db.Exec(`EXPLAIN SELECT abstract FROM Talk LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "¢") {
		t.Errorf("EXPLAIN must show predicted cents:\n%s", res.Plan)
	}
	if !strings.Contains(res.Plan, "predicted: ") {
		t.Errorf("EXPLAIN must show the statement total:\n%s", res.Plan)
	}
}

// TestPredictedVsActualFeedback: executing a crowd query records the
// forecast next to the measured spend, and the engine aggregates the
// error for /stats.
func TestPredictedVsActualFeedback(t *testing.T) {
	db, _ := openDemo(t, 32)
	res, err := db.Query(`SELECT abstract FROM Talk`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicted.Cents <= 0 {
		t.Errorf("crowd probe query must forecast a spend: %+v", res.Predicted)
	}
	if res.ActualCents <= 0 {
		t.Errorf("measured spend missing: %v", res.ActualCents)
	}
	cms := db.Engine().CostModel()
	if cms.Statements == 0 || cms.ActualCents != res.ActualCents {
		t.Errorf("engine must aggregate the error: %+v", cms)
	}
	// The forecast converges: repeated probes are memorized, so the
	// second run predicts (and pays) nothing.
	res2, err := db.Query(`SELECT abstract FROM Talk`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ActualCents != 0 {
		t.Errorf("memorized answers must be free: %v", res2.ActualCents)
	}
	if res2.Predicted.Cents >= res.Predicted.Cents {
		t.Errorf("forecast must shrink once answers are stored: %v -> %v",
			res.Predicted.Cents, res2.Predicted.Cents)
	}
}
