// Command crowddbd is the CrowdDB query server: one shared engine over
// the simulated crowd, served to many concurrent sessions over HTTP/JSON
// and a line-oriented TCP wire protocol. Sessions share the store,
// catalog, task manager, and comparison cache — identical in-flight crowd
// questions from different sessions collapse into one HIT group.
//
// Usage:
//
//	crowddbd                          # HTTP on :8090, in-memory, simulated AMT
//	crowddbd -http :8080 -tcp :4040   # also speak the TCP wire protocol
//	crowddbd -data ./db -demo         # durable, pre-loaded conference schema
//	crowddbd -budget 50               # default per-session comparison budget
//	crowddbd -shards 8 -wal-sync group  # storage fan-out and WAL durability
//
// A quick session (the v1 Jobs API is the primary surface; POST /query
// remains as a byte-compatible shim — see docs/openapi.yaml):
//
//	curl -s localhost:8090/v1/queries -d '{"sql":"SHOW TABLES;"}'
//	curl -sN localhost:8090/v1/queries/j000001/rows     # stream partial rows
//	curl -s -X DELETE localhost:8090/v1/queries/j000001 # cancel
//	curl -s localhost:8090/query -d '{"sql":"SHOW TABLES;"}'
//	curl -s localhost:8090/v1/queries/j000001/trace    # span tree
//	curl -s localhost:8090/stats
//	curl -s localhost:8090/metrics                     # Prometheus text
//	curl -s localhost:8090/healthz
//
// SIGINT/SIGTERM drain gracefully: running queries finish, new ones are
// refused, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling endpoints for the -pprof listener
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"crowddb"
	"crowddb/internal/core"
	"crowddb/internal/crowd"
	"crowddb/internal/crowd/model"
	"crowddb/internal/faultinject"
	"crowddb/internal/server"
	"crowddb/internal/sqltypes"
	"crowddb/internal/storage"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

func main() {
	httpAddr := flag.String("http", ":8090", "HTTP/JSON listen address (empty = disabled)")
	tcpAddr := flag.String("tcp", "", "TCP wire-protocol listen address (empty = disabled)")
	data := flag.String("data", "", "data directory (empty = in-memory)")
	platform := flag.String("platform", "amt", "crowd platform: amt, mobile, model, or none")
	seed := flag.Int64("seed", 1, "crowd simulation seed")
	modelTier := flag.String("model-tier", "", "route HITs model-first with human escalation: a model profile spec — 'sharp', 'cheap', or preset,key=value overrides (accuracy=, confidence=, latency=, workers=, ...); empty = disabled")
	modelReward := flag.Int("model-reward", 0, "model-tier reward in cents per assignment (0 = the profile's cost)")
	modelAssignments := flag.Int("model-assignments", 1, "model-tier replication per HIT")
	confidenceFloor := flag.Float64("confidence-floor", 0.75, "escalate a HIT whose mean model confidence is below this")
	agreementFloor := flag.Float64("agreement-floor", 0.66, "escalate a HIT whose model votes agree below this share")
	modelVoteWeight := flag.Float64("model-vote-weight", 0.6, "weight of a model vote relative to a human vote in tier-weighted resolution")
	adaptiveVotes := flag.Bool("adaptive-votes", false, "stop soliciting comparison votes once early answers are unanimous above the quorum floor")
	demo := flag.Bool("demo", false, "pre-load the paper's VLDB conference schema and talks")
	budget := flag.Int("budget", 0, "default per-session crowd-comparison budget (0 = unlimited)")
	maxSessions := flag.Int("max-sessions", 64, "maximum registered sessions")
	maxConcurrent := flag.Int("max-concurrent", 32, "maximum concurrently executing queries")
	cacheCap := flag.Int("cache-cap", 0, "comparison-cache residency cap (0 = unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain deadline; queries still running at the deadline fail with shutting_down")
	admissionHeadroom := flag.Float64("admission-headroom", 0, "reject queries whose forecast crowd cost exceeds budget_left×headroom before posting any HIT (0 = admit everything)")
	shards := flag.Int("shards", 0, "storage shards per table (0 = one per CPU, capped; durable stores adopt their on-disk count)")
	walSync := flag.String("wal-sync", "group", "WAL durability: always, group, or off")
	slowQueryMs := flag.Int("slow-query-ms", 0, "dump span trees of statements/jobs slower than this to stderr (0 = disabled)")
	pprofAddr := flag.String("pprof", "", "pprof listen address, e.g. localhost:6060 (empty = disabled)")
	flag.Parse()

	if *httpAddr == "" && *tcpAddr == "" {
		fmt.Fprintln(os.Stderr, "crowddbd: nothing to serve (both -http and -tcp empty)")
		os.Exit(1)
	}
	// Crash/fault-injection harness for the CI kill-and-restart smoke test:
	// CROWDDB_CRASHPOINTS="storage.wal.append=3,server.job.row=2" arms
	// countdown crashpoints that os.Exit(137) the process mid-write.
	if err := faultinject.ArmFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "crowddbd:", err)
		os.Exit(1)
	}

	conf := workload.NewConference(20, *seed)
	cfg := crowddb.Config{
		DataDir:            *data,
		Shards:             *shards,
		WALSync:            storage.SyncMode(*walSync),
		Oracle:             conf.Oracle(),
		Payment:            wrm.DefaultPolicy(),
		CompareCacheCap:    *cacheCap,
		SlowQueryThreshold: time.Duration(*slowQueryMs) * time.Millisecond,
	}
	switch *platform {
	case "amt":
		cfg.Platform = crowddb.NewAMTPlatform(*seed)
	case "mobile":
		cfg.Platform = crowddb.NewMobilePlatform(*seed)
	case "model":
		cfg.Platform = crowddb.NewModelPlatform(*seed)
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "crowddbd: unknown platform %q\n", *platform)
		os.Exit(1)
	}
	cfg.Tasks.AdaptiveVotes = *adaptiveVotes
	if *modelTier != "" {
		if cfg.Platform == nil {
			fmt.Fprintln(os.Stderr, "crowddbd: -model-tier needs a human platform to escalate to (-platform amt or mobile)")
			os.Exit(1)
		}
		prof, err := model.ParseSpec(*modelTier)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crowddbd:", err)
			os.Exit(1)
		}
		cfg.Tasks.ModelPlatform = model.New(model.Config{Seed: *seed, Profile: prof})
		cfg.Tasks.ModelReward = crowd.Cents(*modelReward)
		if cfg.Tasks.ModelReward <= 0 {
			cfg.Tasks.ModelReward = prof.CostPerCall
		}
		cfg.Tasks.ModelAssignments = *modelAssignments
		cfg.Tasks.ConfidenceFloor = *confidenceFloor
		cfg.Tasks.AgreementFloor = *agreementFloor
		cfg.Tasks.ModelVoteWeight = *modelVoteWeight
	}

	db, err := crowddb.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crowddbd:", err)
		os.Exit(1)
	}
	defer db.Close()

	if *demo {
		if err := loadDemo(db.Engine(), conf); err != nil {
			fmt.Fprintln(os.Stderr, "crowddbd: demo load:", err)
			os.Exit(1)
		}
		fmt.Println("demo schema loaded: Talk (10 talks, crowd columns), NotableAttendee (crowd table)")
	}

	srv := server.New(db.Engine(), server.Config{
		MaxSessions:       *maxSessions,
		MaxConcurrent:     *maxConcurrent,
		SessionBudget:     *budget,
		AdmissionHeadroom: *admissionHeadroom,
	})
	if *data != "" {
		// Durable jobs: every session, submission, state transition, emitted
		// row, and budget settlement is journaled with the store's fsync
		// contract, so a restart over the same -data recovers every job.
		if err := srv.EnableJournal(filepath.Join(*data, "jobs.log"), storage.SyncMode(*walSync)); err != nil {
			fmt.Fprintln(os.Stderr, "crowddbd: jobs journal:", err)
			os.Exit(1)
		}
	}

	errc := make(chan error, 2)
	if *pprofAddr != "" {
		// net/http/pprof registers on the DefaultServeMux; the API server
		// below uses its own mux, so profiling stays on its own listener.
		go func() {
			fmt.Printf("crowddbd: pprof on %s\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "crowddbd: pprof:", err)
			}
		}()
	}
	if *httpAddr != "" {
		hs := &http.Server{Addr: *httpAddr, Handler: srv.HTTPHandler()}
		go func() {
			fmt.Printf("crowddbd: HTTP/JSON on %s (platform=%s data=%q)\n", *httpAddr, *platform, *data)
			if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				errc <- err
			}
		}()
		defer hs.Close() //nolint:errcheck // final teardown
	}
	if *tcpAddr != "" {
		ln, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crowddbd:", err)
			os.Exit(1)
		}
		go func() {
			fmt.Printf("crowddbd: wire protocol on %s\n", *tcpAddr)
			if err := srv.ServeWire(ln); err != nil {
				errc <- err
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("crowddbd: %s, draining...\n", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "crowddbd:", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "crowddbd: drain:", err)
	}
	rep := srv.Stats()
	fmt.Printf("crowddbd: served %d queries across %d sessions (%d rejected); cache %d entries, %d hits, %d shared flights\n",
		rep.Server.Queries, rep.Server.SessionsOpened, rep.Server.Rejected,
		rep.Cache.Size, rep.Cache.Hits, rep.Cache.Shared)
}

// loadDemo installs the paper's conference schema with the first ten
// talks (same shape as the REPL's -demo).
func loadDemo(eng *core.Engine, conf *workload.Conference) error {
	if _, err := eng.Exec(`CREATE TABLE Talk (
		title STRING PRIMARY KEY,
		abstract CROWD STRING,
		nb_attendees CROWD INTEGER )`); err != nil {
		return err
	}
	if _, err := eng.Exec(`CREATE CROWD TABLE NotableAttendee (
		name STRING PRIMARY KEY,
		title STRING,
		FOREIGN KEY (title) REF Talk(title) )`); err != nil {
		return err
	}
	for _, talk := range conf.Talks[:10] {
		if _, err := eng.Exec("INSERT INTO Talk (title) VALUES (" +
			sqltypes.NewString(talk.Title).SQLLiteral() + ")"); err != nil {
			return err
		}
	}
	return nil
}
