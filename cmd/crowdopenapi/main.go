// Command crowdopenapi generates docs/openapi.yaml from the server's
// in-code API contract (internal/server/openapi.go). CI regenerates the
// document with -check to fail when the committed artifact is stale;
// the server test suite additionally validates that the document covers
// every route, job state, and error code actually served.
//
// Usage:
//
//	crowdopenapi                  # write docs/openapi.yaml
//	crowdopenapi -out spec.yaml   # write elsewhere
//	crowdopenapi -check           # exit 1 if the file on disk is stale
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"crowddb/internal/server"
)

func main() {
	out := flag.String("out", filepath.Join("docs", "openapi.yaml"), "output path")
	check := flag.Bool("check", false, "verify the file on disk matches the generator instead of writing")
	flag.Parse()

	spec := server.OpenAPISpec()
	if *check {
		disk, err := os.ReadFile(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crowdopenapi: %v (generate with `go run ./cmd/crowdopenapi`)\n", err)
			os.Exit(1)
		}
		if !bytes.Equal(disk, spec) {
			fmt.Fprintf(os.Stderr, "crowdopenapi: %s is stale; regenerate with `go run ./cmd/crowdopenapi`\n", *out)
			os.Exit(1)
		}
		fmt.Printf("crowdopenapi: %s is up to date (%d bytes)\n", *out, len(spec))
		return
	}
	if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "crowdopenapi:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, spec, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "crowdopenapi:", err)
		os.Exit(1)
	}
	fmt.Printf("crowdopenapi: wrote %s (%d bytes)\n", *out, len(spec))
}
