// Command amtsimd serves the simulated Amazon Mechanical Turk over HTTP,
// so a CrowdDB engine (or anything else) can exercise the full networked
// task lifecycle the paper's prototype had against the real AMT endpoint:
// POST /groups, GET /groups/{id}/status, GET /groups/{id}/assignments,
// POST /assignments/{id}/approve|reject, POST /groups/{id}/expire,
// POST /step (advance virtual time), GET /now.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"crowddb/internal/crowd/amt"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8711", "listen address")
	seed := flag.Int64("seed", 1, "worker simulation seed")
	flag.Parse()

	platform := amt.NewDefault(*seed)
	fmt.Printf("amtsimd: simulated Mechanical Turk listening on %s (seed %d)\n", *addr, *seed)
	if err := http.ListenAndServe(*addr, amt.NewServer(platform)); err != nil {
		fmt.Fprintln(os.Stderr, "amtsimd:", err)
		os.Exit(1)
	}
}
