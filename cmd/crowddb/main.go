// Command crowddb is the interactive CrowdSQL shell: a CrowdDB engine
// over the simulated crowd, mirroring the demo the paper gave at VLDB.
//
// Usage:
//
//	crowddb                         # in-memory, simulated AMT crowd
//	crowddb -data ./mydb            # durable: schema/data/answers persist
//	crowddb -platform mobile        # use the VLDB mobile crowd
//	crowddb -demo                   # pre-load the paper's conference schema
//	crowddb -shards 8               # hash-partition tables across 8 shards
//	crowddb -wal-sync always        # fsync every WAL record (default: group)
//	crowddb -server http://host:8090  # no local engine: drive a crowddbd
//	                                  # through the v1 Jobs API (pkg/client);
//	                                  # rows stream live, Ctrl-C cancels
//
// Inside the shell, CrowdSQL statements end with ';'. Extra commands:
//
//	\help             show help
//	\stats            crowd activity counters for the session
//	\workers          the worker community (quality scores)
//	\templates        generated UI templates
//	\quit             exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"crowddb"
	"crowddb/internal/sqltypes"
	"crowddb/internal/storage"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

func main() {
	data := flag.String("data", "", "data directory (empty = in-memory)")
	platform := flag.String("platform", "amt", "crowd platform: amt, mobile, or none")
	seed := flag.Int64("seed", 1, "crowd simulation seed")
	demo := flag.Bool("demo", false, "pre-load the paper's VLDB conference schema and talks")
	command := flag.String("c", "", "execute this CrowdSQL script and exit (non-interactive)")
	shards := flag.Int("shards", 0, "storage shards per table (0 = one per CPU, capped; durable stores adopt their on-disk count)")
	walSync := flag.String("wal-sync", "group", "WAL durability: always, group, or off")
	server := flag.String("server", "", "crowddbd base URL; when set the shell runs remotely over the v1 Jobs API (pkg/client) instead of embedding an engine")
	budget := flag.Int("budget", 0, "remote-session crowd-comparison budget (-server mode; 0 = server default)")
	flag.Parse()

	if *server != "" {
		serverMain(*server, *command, *budget)
		return
	}

	conf := workload.NewConference(20, *seed)
	cfg := crowddb.Config{
		DataDir: *data,
		Shards:  *shards,
		WALSync: storage.SyncMode(*walSync),
		Oracle:  conf.Oracle(),
		Payment: wrm.DefaultPolicy(),
	}
	switch *platform {
	case "amt":
		cfg.Platform = crowddb.NewAMTPlatform(*seed)
	case "mobile":
		cfg.Platform = crowddb.NewMobilePlatform(*seed)
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "crowddb: unknown platform %q\n", *platform)
		os.Exit(1)
	}

	db, err := crowddb.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crowddb:", err)
		os.Exit(1)
	}
	defer db.Close()

	if *demo {
		if err := loadDemo(db, conf); err != nil {
			fmt.Fprintln(os.Stderr, "crowddb: demo load:", err)
			os.Exit(1)
		}
		fmt.Println("demo schema loaded: Talk (10 talks, crowd columns), NotableAttendee (crowd table)")
	}

	if *command != "" {
		res, err := db.Exec(*command)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Print(crowddb.FormatTable(res))
		if res.Predicted.Cents > 0 || res.ActualCents > 0 {
			fmt.Printf("cost: predicted %s, actual ¢%.1f\n", res.Predicted, res.ActualCents)
		}
		return
	}

	fmt.Printf("CrowdDB shell — platform=%s data=%q (\\help for help)\n", *platform, *data)
	repl(db)
}

func loadDemo(db *crowddb.DB, conf *workload.Conference) error {
	if _, err := db.Exec(`CREATE TABLE Talk (
		title STRING PRIMARY KEY,
		abstract CROWD STRING,
		nb_attendees CROWD INTEGER )`); err != nil {
		return err
	}
	if _, err := db.Exec(`CREATE CROWD TABLE NotableAttendee (
		name STRING PRIMARY KEY,
		title STRING,
		FOREIGN KEY (title) REF Talk(title) )`); err != nil {
		return err
	}
	for _, talk := range conf.Talks[:10] {
		if _, err := db.Exec("INSERT INTO Talk (title) VALUES (" +
			sqltypes.NewString(talk.Title).SQLLiteral() + ")"); err != nil {
			return err
		}
	}
	return nil
}

func repl(db *crowddb.DB) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "crowddb> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if command(db, trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			prompt = "      -> "
			continue
		}
		prompt = "crowddb> "
		sql := buf.String()
		buf.Reset()
		res, err := db.Exec(sql)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Print(crowddb.FormatTable(res))
		for _, w := range res.Warnings {
			fmt.Println("warning:", w)
		}
		if res.Stats.ProbeRequests+res.Stats.NewTupleRequests+res.Stats.Comparisons > 0 {
			fmt.Printf("crowd: %d probes, %d tuple solicitations, %d comparisons (%d cached)\n",
				res.Stats.ProbeRequests, res.Stats.NewTupleRequests,
				res.Stats.Comparisons, res.Stats.CacheHits)
		}
		if res.Predicted.Cents > 0 || res.ActualCents > 0 {
			fmt.Printf("cost: predicted %s, actual ¢%.1f\n", res.Predicted, res.ActualCents)
		}
	}
}

// command handles \-commands; it reports whether the shell should exit.
func command(db *crowddb.DB, cmd string) bool {
	switch strings.Fields(cmd)[0] {
	case "\\quit", "\\q":
		return true
	case "\\help":
		fmt.Println(`CrowdSQL statements end with ';'. Examples:
  CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING);
  SELECT abstract FROM Talk WHERE title = 'CrowdDB';
  SELECT title FROM Talk ORDER BY CROWDORDER(title, "Which talk did you like better") LIMIT 10;
Commands: \stats \workers \templates \quit`)
	case "\\stats":
		if t := db.Engine().Tasks(); t != nil {
			s := t.Stats()
			fmt.Printf("groups=%d hits=%d assignments=%d decisions=%d crowd-time=%s spend=%s\n",
				s.GroupsPosted, s.HITsPosted, s.AssignmentsIn, s.Decisions, s.CrowdTime, s.ApprovedSpend)
			fmt.Printf("async: window=%d peak-in-flight=%d peak-queue=%d expired=%d rtt-p50=%s rtt-p90=%s\n",
				s.MaxInFlight, s.PeakInFlight, s.PeakQueueDepth, s.ExpiredGroups,
				s.GroupLatencyP50, s.GroupLatencyP90)
		} else {
			fmt.Println("no crowd platform attached")
		}
		c := db.Engine().CacheStats()
		fmt.Printf("compare-cache: size=%d cap=%d hits=%d misses=%d shared-flights=%d evictions=%d\n",
			c.Size, c.Cap, c.Hits, c.Misses, c.Shared, c.Evictions)
		if cms := db.Engine().CostModel(); cms.Statements > 0 {
			fmt.Printf("cost-model: %d statements, predicted=¢%.1f actual=¢%.1f mean-abs-err=%.0f%%\n",
				cms.Statements, cms.PredictedCents, cms.ActualCents, cms.MeanAbsPctErr)
		}
	case "\\workers":
		ws := db.Engine().WRM().Community()
		if len(ws) == 0 {
			fmt.Println("no workers yet")
		}
		for i, w := range ws {
			if i >= 15 {
				fmt.Printf("... and %d more\n", len(ws)-15)
				break
			}
			fmt.Printf("%-8s score=%.2f agreed=%d disagreed=%d\n", w.WorkerID, w.Score(), w.Agreed, w.Disagreed)
		}
	case "\\templates":
		for _, t := range db.Engine().UI().Templates() {
			table := t.Table
			if table == "" {
				table = "(generic)"
			}
			fmt.Printf("%-20s %-12s %s\n", table, t.Kind, t.Instructions)
		}
	default:
		fmt.Println("unknown command; \\help for help")
	}
	return false
}
