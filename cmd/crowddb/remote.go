package main

// Server mode: with -server the shell keeps no local engine at all — it
// drives a crowddbd over the v1 Jobs API through the public SDK
// (pkg/client). Statements submit as jobs, rows print the moment the
// server streams them (crowd queries show partial results while HIT
// groups are still in flight), and Ctrl-C cancels the running job
// instead of killing the shell.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"crowddb/pkg/client"
)

// serverMain is the shell entry point in -server mode. command, when
// non-empty, runs one script and exits.
func serverMain(url, command string, budget int) {
	ctx := context.Background()
	c := client.New(url)
	if !c.Healthy(ctx) {
		fmt.Fprintf(os.Stderr, "crowddb: server %s is not healthy\n", url)
		os.Exit(1)
	}
	if _, err := c.CreateSession(ctx, budget); err != nil {
		fmt.Fprintln(os.Stderr, "crowddb: create session:", err)
		os.Exit(1)
	}
	defer c.CloseSession(context.Background()) //nolint:errcheck // best-effort teardown

	if command != "" {
		if !runRemote(ctx, c, command) {
			os.Exit(1)
		}
		return
	}

	fmt.Printf("CrowdDB shell — server=%s session=%s (\\help for help)\n", url, c.Session())
	remoteRepl(c)
}

// runRemote executes one script as a job, streaming rows as they arrive;
// it reports success. Ctrl-C cancels the job and lets the budget settle.
func runRemote(parent context.Context, c *client.Client, sql string) bool {
	ctx, stop := signal.NotifyContext(parent, syscall.SIGINT)
	defer stop()
	job, err := c.Submit(parent, sql)
	if err != nil {
		fmt.Println("error:", err)
		return false
	}
	it, err := job.Rows(parent)
	if err != nil {
		fmt.Println("error:", err)
		return false
	}
	defer it.Close()
	header := false
	n := 0
	for {
		// Streamed printing: each row appears as the server produces it.
		done := make(chan bool, 1)
		go func() { done <- it.Next() }()
		select {
		case ok := <-done:
			if !ok {
				goto finished
			}
		case <-ctx.Done():
			fmt.Println("\ncancelling...")
			if _, err := job.Cancel(parent); err != nil {
				fmt.Println("error:", err)
			}
			<-done // drain the in-flight Next
			goto finished
		}
		row := it.Row()
		if !header {
			// Columns are known by the time the first row streams.
			if st, err := job.Status(parent); err == nil && len(st.Columns) > 0 {
				fmt.Println(strings.Join(st.Columns, " | "))
				fmt.Println(strings.Repeat("-", 3*len(st.Columns)+8))
			}
			header = true
		}
		cells := make([]string, len(row))
		for i := range row {
			cells[i] = row.Cell(i)
		}
		fmt.Println(strings.Join(cells, " | "))
		n++
	}
finished:
	if err := it.Err(); err != nil {
		fmt.Println("error:", err)
		return false
	}
	st, err := job.Wait(parent)
	if err != nil {
		fmt.Println("error:", err)
		return false
	}
	switch st.State {
	case "done":
		if st.Plan != "" {
			fmt.Print(st.Plan)
		} else if len(st.Columns) == 0 {
			fmt.Printf("%d row(s) affected\n", st.Affected)
		} else {
			fmt.Printf("(%d rows)\n", n)
		}
		for _, w := range st.Warnings {
			fmt.Println("warning:", w)
		}
		if s := st.Stats; s.ProbeRequests+s.NewTupleRequests+s.Comparisons > 0 {
			fmt.Printf("crowd: %d probes, %d tuple solicitations, %d comparisons (%d cached)\n",
				s.ProbeRequests, s.NewTupleRequests, s.Comparisons, s.CacheHits)
		}
		if st.PredictedCents > 0 || st.SpentCents > 0 {
			fmt.Printf("cost: predicted ¢%.1f, spent ¢%.1f\n", st.PredictedCents, st.SpentCents)
		}
		return true
	case "cancelled":
		fmt.Printf("cancelled after %d row(s), ¢%.1f spent\n", st.RowsEmitted, st.SpentCents)
		return true
	default:
		if st.Error != nil {
			fmt.Println("error:", st.Error)
		} else {
			fmt.Println("error: job ended", st.State)
		}
		return false
	}
}

func remoteRepl(c *client.Client) {
	ctx := context.Background()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "crowddb> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if remoteCommand(ctx, c, trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			prompt = "      -> "
			continue
		}
		prompt = "crowddb> "
		sql := buf.String()
		buf.Reset()
		runRemote(ctx, c, sql)
	}
}

// remoteCommand handles \-commands in server mode; reports exit.
func remoteCommand(ctx context.Context, c *client.Client, cmd string) bool {
	switch strings.Fields(cmd)[0] {
	case "\\quit", "\\q":
		return true
	case "\\help":
		fmt.Println(`CrowdSQL statements end with ';' and run as server-side jobs
(rows stream as the crowd answers; Ctrl-C cancels the running job).
Commands: \stats \session \quit`)
	case "\\stats":
		raw, err := c.Stats(ctx)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		var pretty map[string]json.RawMessage
		if err := json.Unmarshal(raw, &pretty); err != nil {
			fmt.Println(string(raw))
			return false
		}
		for _, k := range []string{"server", "cache", "tasks", "cost_model"} {
			if v, ok := pretty[k]; ok {
				fmt.Printf("%s: %s\n", k, v)
			}
		}
	case "\\session":
		info, err := c.SessionStatus(ctx)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("session=%s queries=%d budget_left=%d comparisons=%d cache_hits=%d\n",
			info.ID, info.Queries, info.BudgetLeft, info.Stats.Comparisons, info.Stats.CacheHits)
	default:
		fmt.Println("unknown command; \\help for help")
	}
	return false
}
