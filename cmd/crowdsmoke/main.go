// Command crowdsmoke is the Jobs-API smoke test CI runs against a live
// crowddbd: it exercises the whole v1 lifecycle through the public SDK
// (pkg/client) — create a session, submit a crowd query, stream partial
// rows, wait for completion, then submit a second job and cancel it
// mid-crowd-wait, asserting the terminal states and that the budget
// settled. Exit status 0 means the surface works end to end.
//
// Usage:
//
//	crowdsmoke -url http://127.0.0.1:18090
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"crowddb/pkg/client"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crowdsmoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8090", "crowddbd base URL")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall deadline")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	c := client.New(*url)
	deadline := time.Now().Add(30 * time.Second)
	for !c.Healthy(ctx) {
		if time.Now().After(deadline) {
			fail("server %s never became healthy", *url)
		}
		time.Sleep(200 * time.Millisecond)
	}

	if _, err := c.CreateSession(ctx, 0); err != nil {
		fail("create session: %v", err)
	}
	defer c.CloseSession(context.Background()) //nolint:errcheck // teardown

	// 1. Submit a crowd query and stream its rows (partial results flow
	// while HIT groups round-trip; against -demo the abstracts are CNULL
	// until the simulated crowd answers).
	job, err := c.Submit(ctx, "SELECT title, abstract FROM Talk LIMIT 3;")
	if err != nil {
		fail("submit: %v", err)
	}
	it, err := job.Rows(ctx)
	if err != nil {
		fail("rows: %v", err)
	}
	streamed := 0
	for it.Next() {
		streamed++
	}
	if err := it.Err(); err != nil {
		fail("row stream: %v", err)
	}
	if it.FinalState() != "done" {
		fail("stream trailer state = %q (error %v)", it.FinalState(), it.FinalError())
	}
	it.Close()
	st, err := job.Wait(ctx)
	if err != nil {
		fail("wait: %v", err)
	}
	if st.State != "done" || streamed == 0 || st.RowsEmitted != streamed {
		fail("job 1: state=%s streamed=%d emitted=%d (err %v)", st.State, streamed, st.RowsEmitted, st.Error)
	}
	fmt.Printf("crowdsmoke: job %s done, %d rows streamed, ¢%.1f spent\n", job.ID(), streamed, st.SpentCents)

	// 2. Submit a long crowd sort and cancel it mid-flight: the job must
	// reach the cancelled state (not hang on the crowd wait).
	job2, err := c.Submit(ctx, "SELECT title FROM Talk ORDER BY CROWDORDER(title, 'Which talk sounds more interesting?');")
	if err != nil {
		fail("submit job 2: %v", err)
	}
	if _, err := job2.Cancel(ctx); err != nil {
		fail("cancel: %v", err)
	}
	st2, err := job2.Wait(ctx)
	if err != nil {
		fail("wait cancelled: %v", err)
	}
	if st2.State != "cancelled" && st2.State != "done" {
		// "done" is a benign race: the job finished before the cancel
		// landed. Anything else is a lifecycle bug.
		fail("job 2: state=%s (err %v)", st2.State, st2.Error)
	}
	fmt.Printf("crowdsmoke: job %s %s after cancel, ¢%.1f spent\n", job2.ID(), st2.State, st2.SpentCents)

	// 3. The session settled: budget accounting never goes negative and
	// the session resource is still reachable.
	info, err := c.SessionStatus(ctx)
	if err != nil {
		fail("session status: %v", err)
	}
	if info.BudgetLeft < -1 {
		fail("session budget corrupted: %+v", info)
	}
	fmt.Println("crowdsmoke: PASS")
}
