// Command crowdsmoke is the Jobs-API smoke test CI runs against a live
// crowddbd: it exercises the whole v1 lifecycle through the public SDK
// (pkg/client) — create a session, submit a crowd query, stream partial
// rows, wait for completion, then submit a second job and cancel it
// mid-crowd-wait, asserting the terminal states and that the budget
// settled. Exit status 0 means the surface works end to end.
//
// Usage:
//
//	crowdsmoke -url http://127.0.0.1:18090
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"crowddb/pkg/client"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crowdsmoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8090", "crowddbd base URL")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall deadline")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	c := client.New(*url)
	deadline := time.Now().Add(30 * time.Second)
	for !c.Healthy(ctx) {
		if time.Now().After(deadline) {
			fail("server %s never became healthy", *url)
		}
		time.Sleep(200 * time.Millisecond)
	}

	if _, err := c.CreateSession(ctx, 0); err != nil {
		fail("create session: %v", err)
	}
	defer c.CloseSession(context.Background()) //nolint:errcheck // teardown

	// 1. Submit a crowd query and stream its rows (partial results flow
	// while HIT groups round-trip; against -demo the abstracts are CNULL
	// until the simulated crowd answers).
	job, err := c.Submit(ctx, "SELECT title, abstract FROM Talk LIMIT 3;")
	if err != nil {
		fail("submit: %v", err)
	}
	it, err := job.Rows(ctx)
	if err != nil {
		fail("rows: %v", err)
	}
	streamed := 0
	for it.Next() {
		streamed++
	}
	if err := it.Err(); err != nil {
		fail("row stream: %v", err)
	}
	if it.FinalState() != "done" {
		fail("stream trailer state = %q (error %v)", it.FinalState(), it.FinalError())
	}
	it.Close()
	st, err := job.Wait(ctx)
	if err != nil {
		fail("wait: %v", err)
	}
	if st.State != "done" || streamed == 0 || st.RowsEmitted != streamed {
		fail("job 1: state=%s streamed=%d emitted=%d (err %v)", st.State, streamed, st.RowsEmitted, st.Error)
	}
	fmt.Printf("crowdsmoke: job %s done, %d rows streamed, ¢%.1f spent\n", job.ID(), streamed, st.SpentCents)

	// 2. Quorum streaming: a CROWDORDER job delivers every row through
	// the partial-result stream BEFORE the stream's completion trailer —
	// the protocol-level face of the settled-prefix executor. (The
	// stronger deterministic property — the first row leaves the
	// operator while later comparisons are still uncollected — is
	// pinned in-process by E22 and the exec tests; against -demo the
	// virtual-time crowd settles a whole sort faster than one HTTP
	// round-trip, so a wall-clock status poll can't reliably observe
	// it. When the poll does catch the window, report it.)
	jo, err := c.Submit(ctx, "SELECT title FROM Talk ORDER BY CROWDORDER(title, 'Which talk ranks higher?');")
	if err != nil {
		fail("submit crowdorder: %v", err)
	}
	ito, err := jo.Rows(ctx)
	if err != nil {
		fail("crowdorder rows: %v", err)
	}
	firstCmp := -1
	ordered := 0
	for ito.Next() {
		if ordered == 0 {
			if stm, err := jo.Status(ctx); err == nil {
				firstCmp = stm.Stats.Comparisons
			}
		}
		ordered++
	}
	if err := ito.Err(); err != nil {
		fail("crowdorder stream: %v", err)
	}
	if ordered == 0 || ito.FinalState() != "done" {
		fail("crowdorder stream: %d rows before trailer, trailer state %q (err %v)",
			ordered, ito.FinalState(), ito.FinalError())
	}
	ito.Close()
	sto, err := jo.Wait(ctx)
	if err != nil {
		fail("crowdorder wait: %v", err)
	}
	if sto.State != "done" || sto.Stats.Comparisons == 0 || sto.RowsEmitted != ordered {
		fail("crowdorder job: state=%s cmp=%d streamed=%d emitted=%d (err %v)",
			sto.State, sto.Stats.Comparisons, ordered, sto.RowsEmitted, sto.Error)
	}
	if firstCmp >= 0 && firstCmp < sto.Stats.Comparisons {
		fmt.Printf("crowdsmoke: crowdorder job %s streamed row 1 at %d of %d comparisons\n",
			jo.ID(), firstCmp, sto.Stats.Comparisons)
	} else {
		fmt.Printf("crowdsmoke: crowdorder job %s streamed %d rows ahead of the done trailer (¢%.1f, %d comparisons)\n",
			jo.ID(), ordered, sto.SpentCents, sto.Stats.Comparisons)
	}

	// 3. Submit a long crowd sort and cancel it mid-flight: the job must
	// reach the cancelled state (not hang on the crowd wait).
	job2, err := c.Submit(ctx, "SELECT title FROM Talk ORDER BY CROWDORDER(title, 'Which talk sounds more interesting?');")
	if err != nil {
		fail("submit job 2: %v", err)
	}
	if _, err := job2.Cancel(ctx); err != nil {
		fail("cancel: %v", err)
	}
	st2, err := job2.Wait(ctx)
	if err != nil {
		fail("wait cancelled: %v", err)
	}
	if st2.State != "cancelled" && st2.State != "done" {
		// "done" is a benign race: the job finished before the cancel
		// landed. Anything else is a lifecycle bug.
		fail("job 2: state=%s (err %v)", st2.State, st2.Error)
	}
	fmt.Printf("crowdsmoke: job %s %s after cancel, ¢%.1f spent\n", job2.ID(), st2.State, st2.SpentCents)

	// 4. The session settled: budget accounting never goes negative and
	// the session resource is still reachable.
	info, err := c.SessionStatus(ctx)
	if err != nil {
		fail("session status: %v", err)
	}
	if info.BudgetLeft < -1 {
		fail("session budget corrupted: %+v", info)
	}
	fmt.Println("crowdsmoke: PASS")
}
