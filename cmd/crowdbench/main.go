// Command crowdbench regenerates the paper's evaluation exhibits (see
// DESIGN.md §4 and EXPERIMENTS.md). Each experiment prints the series the
// corresponding figure or table reports.
//
// Usage:
//
//	crowdbench                 # run every experiment
//	crowdbench -run E6,E10     # run selected experiments
//	crowdbench -seed 7         # change the simulation seed
//	crowdbench -list           # list experiments
//	crowdbench -json out/      # also write BENCH_<id>.json per experiment
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"crowddb/internal/bench"
)

// benchJSON is the machine-readable BENCH_<id>.json shape: the full
// result table plus the experiment's headline metrics (ops/sec, crowd
// cost, cache hit rate, ...).
type benchJSON struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Exhibit string             `json:"exhibit"`
	Seed    int64              `json:"seed"`
	Headers []string           `json:"headers"`
	Rows    [][]string         `json:"rows"`
	Notes   []string           `json:"notes,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func writeJSON(dir string, seed int64, t *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(benchJSON{
		ID: t.ID, Title: t.Title, Exhibit: t.Exhibit, Seed: seed,
		Headers: t.Headers, Rows: t.Rows, Notes: t.Notes, Metrics: t.Metrics,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+t.ID+".json"), append(data, '\n'), 0o644)
}

func main() {
	seed := flag.Int64("seed", 42, "simulation seed (all experiments are deterministic per seed)")
	run := flag.String("run", "", "comma-separated experiment IDs (e.g. E1,E6); empty = all")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonDir := flag.String("json", "", "directory for machine-readable BENCH_<id>.json results (empty = disabled)")
	flag.Parse()

	experiments := bench.All()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}
	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	ran := 0
	for _, e := range experiments {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		tab := e.Run(*seed)
		tab.Fprint(os.Stdout)
		if *jsonDir != "" {
			if err := writeJSON(*jsonDir, *seed, tab); err != nil {
				fmt.Fprintf(os.Stderr, "crowdbench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "crowdbench: no experiment matches %q (use -list)\n", *run)
		os.Exit(1)
	}
}
