// Command crowdbench regenerates the paper's evaluation exhibits (see
// DESIGN.md §4 and EXPERIMENTS.md). Each experiment prints the series the
// corresponding figure or table reports.
//
// Usage:
//
//	crowdbench                 # run every experiment
//	crowdbench -run E6,E10     # run selected experiments
//	crowdbench -seed 7         # change the simulation seed
//	crowdbench -list           # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"crowddb/internal/bench"
)

func main() {
	seed := flag.Int64("seed", 42, "simulation seed (all experiments are deterministic per seed)")
	run := flag.String("run", "", "comma-separated experiment IDs (e.g. E1,E6); empty = all")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	experiments := bench.All()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}
	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	ran := 0
	for _, e := range experiments {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		e.Run(*seed).Fprint(os.Stdout)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "crowdbench: no experiment matches %q (use -list)\n", *run)
		os.Exit(1)
	}
}
