// Command benchdiff is the benchmark-regression gate: it compares a
// candidate crowdbench run (crowdbench -json <dir>) against the committed
// baselines and exits non-zero when a cost or performance metric
// regresses beyond tolerance.
//
// Usage:
//
//	crowdbench -seed 42 -json /tmp/bench
//	benchdiff -baseline bench/baselines -candidate /tmp/bench
//
// Tolerance: each metric may drift by max(-tol × baseline, -slack)
// against its direction (cost-like metrics must not rise, benefit-like
// metrics must not fall); see internal/bench/diff.go for the rules.
package main

import (
	"flag"
	"fmt"
	"os"

	"crowddb/internal/bench"
)

func main() {
	baseline := flag.String("baseline", "bench/baselines", "directory with committed BENCH_*.json baselines")
	candidate := flag.String("candidate", "", "directory with the candidate run's BENCH_*.json files")
	tol := flag.Float64("tol", 0.10, "relative tolerance per metric")
	slack := flag.Float64("slack", 1.0, "absolute slack per metric (protects single-digit metrics)")
	flag.Parse()

	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -candidate is required")
		os.Exit(2)
	}
	res, err := bench.CompareDirs(*baseline, *candidate, *tol, *slack)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fmt.Print(res.Report())
	if !res.OK() {
		os.Exit(1)
	}
}
