package crowddb

// One testing.B benchmark per reproduced paper exhibit (DESIGN.md §4,
// EXPERIMENTS.md). Each iteration runs the full experiment in virtual
// time, so wall-clock numbers measure the simulation+engine cost while
// the printed tables (go run ./cmd/crowdbench) carry the paper-shaped
// results. A few engine micro-benchmarks follow.
import (
	"fmt"
	"testing"

	"crowddb/internal/bench"
	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

func benchExperiment(b *testing.B, run func(seed int64) *bench.Table) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab := run(int64(i + 1))
		if len(tab.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkE1CompletionVsReward(b *testing.B) { benchExperiment(b, bench.E1CompletionVsReward) }
func BenchmarkE2TurnaroundVsBatch(b *testing.B)  { benchExperiment(b, bench.E2TurnaroundVsBatch) }
func BenchmarkE3WorkerAffinity(b *testing.B)     { benchExperiment(b, bench.E3WorkerAffinity) }
func BenchmarkE4MajorityVote(b *testing.B)       { benchExperiment(b, bench.E4MajorityVote) }
func BenchmarkE5CrowdProbe(b *testing.B)         { benchExperiment(b, bench.E5CrowdProbe) }
func BenchmarkE6CrowdJoin(b *testing.B)          { benchExperiment(b, bench.E6CrowdJoin) }
func BenchmarkE7EntityResolution(b *testing.B)   { benchExperiment(b, bench.E7EntityResolution) }
func BenchmarkE8CrowdOrder(b *testing.B)         { benchExperiment(b, bench.E8CrowdOrder) }
func BenchmarkE9UIGeneration(b *testing.B)       { benchExperiment(b, bench.E9UIGeneration) }
func BenchmarkE10OptimizerRules(b *testing.B)    { benchExperiment(b, bench.E10OptimizerRules) }
func BenchmarkE11Boundedness(b *testing.B)       { benchExperiment(b, bench.E11Boundedness) }
func BenchmarkE12MobileVsAMT(b *testing.B)       { benchExperiment(b, bench.E12MobileVsAMT) }
func BenchmarkE13Diurnal(b *testing.B)           { benchExperiment(b, bench.E13Diurnal) }
func BenchmarkE14VotePolicy(b *testing.B)        { benchExperiment(b, bench.E14VotePolicy) }
func BenchmarkE15AsyncScheduler(b *testing.B)    { benchExperiment(b, bench.E15AsyncScheduler) }
func BenchmarkE16ConcurrentSessions(b *testing.B) {
	benchExperiment(b, bench.E16ConcurrentSessions)
}
func BenchmarkE18StorageThroughput(b *testing.B) {
	benchExperiment(b, bench.E18StorageThroughput)
}
func BenchmarkE22QuorumStreaming(b *testing.B) {
	benchExperiment(b, bench.E22QuorumStreaming)
}

// --- engine micro-benchmarks (no crowd: the relational substrate) ---

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db, err := Open(Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if _, err := db.Exec(`CREATE TABLE Talk (
		title STRING PRIMARY KEY, room STRING, nb_attendees INTEGER )`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		sql := fmt.Sprintf("INSERT INTO Talk VALUES ('talk-%04d', 'Room %d', %d)", i, i%10, i%300)
		if _, err := db.Exec(sql); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkEnginePointLookup(b *testing.B) {
	db := benchDB(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(fmt.Sprintf("SELECT nb_attendees FROM Talk WHERE title = 'talk-%04d'", i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineScanFilter(b *testing.B) {
	db := benchDB(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT title FROM Talk WHERE nb_attendees > 150"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineAggregate(b *testing.B) {
	db := benchDB(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT room, COUNT(*), AVG(nb_attendees) FROM Talk GROUP BY room"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchPipeline(b *testing.B) {
	// The vectorized executor's bread-and-butter shape: scan → filter →
	// project → sort → limit, rows flowing between operators in batches.
	db := benchDB(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT title, nb_attendees FROM Talk WHERE nb_attendees > 50 ORDER BY nb_attendees DESC LIMIT 10"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineInsert(b *testing.B) {
	db, err := Open(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v STRING)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'value-%d')", i, i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrowdProbeQuery(b *testing.B) {
	// Full crowd path: one probe query per iteration against a fresh talk.
	conf := workload.NewConference(2000, 1)
	db, err := Open(Config{
		Platform: NewAMTPlatform(1),
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	db.Exec(`CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING, nb_attendees CROWD INTEGER)`)
	for _, talk := range conf.Talks {
		db.Exec("INSERT INTO Talk (title) VALUES (" + sqltypes.NewString(talk.Title).SQLLiteral() + ")")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		talk := conf.Talks[i%len(conf.Talks)]
		if _, err := db.Query("SELECT abstract FROM Talk WHERE title = " +
			sqltypes.NewString(talk.Title).SQLLiteral()); err != nil {
			b.Fatal(err)
		}
	}
}
