package client_test

// SDK integration tests: a real internal/server over httptest, driven
// exclusively through the public client surface.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"crowddb/internal/core"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/server"
	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
	"crowddb/pkg/client"
)

func testServer(t *testing.T, seed int64, nPairs int) (*httptest.Server, *core.Engine) {
	t.Helper()
	conf := workload.NewConference(8, seed)
	eng, err := core.Open(core.Config{
		Platform: amt.NewDefault(seed),
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if _, err := eng.Exec(`CREATE TABLE Pair (id INTEGER PRIMARY KEY, a STRING, b STRING)`); err != nil {
		t.Fatal(err)
	}
	cs := workload.NewCompanies(nPairs, seed)
	for i, c := range cs.List {
		variant := c.Variants[len(c.Variants)-1]
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO Pair VALUES (%d, %s, %s)",
			i, sqltypes.NewString(c.Canonical).SQLLiteral(), sqltypes.NewString(variant).SQLLiteral())); err != nil {
			t.Fatal(err)
		}
	}
	srv := server.New(eng, server.Config{})
	ts := httptest.NewServer(srv.HTTPHandler())
	t.Cleanup(ts.Close)
	return ts, eng
}

func TestClientJobLifecycle(t *testing.T) {
	ts, _ := testServer(t, 81, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	c := client.New(ts.URL)
	if !c.Healthy(ctx) {
		t.Fatal("server unhealthy")
	}
	info, err := c.CreateSession(ctx, 25)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.BudgetLeft != 25 {
		t.Fatalf("session: %+v", info)
	}

	job, err := c.Submit(ctx, "SELECT id FROM Pair WHERE a ~= b")
	if err != nil {
		t.Fatal(err)
	}
	it, err := job.Rows(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var rows []client.Row
	for it.Next() {
		rows = append(rows, it.Row())
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if it.FinalState() != "done" || len(rows) != 3 {
		t.Fatalf("stream: state=%s rows=%d err=%v", it.FinalState(), len(rows), it.FinalError())
	}
	st, err := job.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Stats.Comparisons != 3 || st.SpentCents <= 0 {
		t.Fatalf("status: %+v", st)
	}

	// The session settled the spend.
	sinfo, err := c.SessionStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sinfo.BudgetLeft != 25-3 {
		t.Fatalf("budget_left = %d, want 22", sinfo.BudgetLeft)
	}
	if err := c.CloseSession(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestClientQueryConvenienceAndErrors(t *testing.T) {
	ts, _ := testServer(t, 83, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := client.New(ts.URL)

	res, err := c.Query(ctx, "SELECT id, a FROM Pair")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Columns) != 2 || res.Rows[0].Cell(0) != "0" {
		t.Fatalf("result: %+v", res)
	}

	// Coded errors surface as *client.Error.
	_, err = c.Query(ctx, "SELEC nope")
	var cerr *client.Error
	if !errors.As(err, &cerr) || cerr.Code != "parse_error" {
		t.Fatalf("parse error = %v", err)
	}
	// Unknown job ids 404 with a code.
	_, err = c.Query(ctx, "SELECT id FROM NoSuchTable")
	if !errors.As(err, &cerr) || cerr.Code != "internal" {
		t.Fatalf("exec error = %v", err)
	}
}

// TestClientStreamRowsReconnects: a stream dropped without a terminal
// trailer is transparently re-opened with from=<next unseen offset>, so
// the caller sees every row exactly once even when the connection (or
// the whole server) goes away mid-stream.
func TestClientStreamRowsReconnects(t *testing.T) {
	rows := []string{`["a"]`, `["b"]`, `["c"]`, `["d"]`, `["e"]`}
	var requests int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := atomic.AddInt32(&requests, 1)
		from, _ := strconv.Atoi(r.URL.Query().Get("from"))
		w.Header().Set("Content-Type", "application/x-ndjson")
		switch n {
		case 1:
			// First attempt: two rows, then the "connection" drops — no
			// terminal trailer.
			for _, row := range rows[from:2] {
				fmt.Fprintln(w, row)
			}
		default:
			// The "restarted server" serves the tail and finishes cleanly.
			for _, row := range rows[from:] {
				fmt.Fprintln(w, row)
			}
			fmt.Fprintln(w, `{"state":"done"}`)
		}
	}))
	defer ts.Close()

	c := client.New(ts.URL, client.WithPollInterval(time.Millisecond))
	job := c.Job("j000042") // reattach by id, as after a restart
	var got []string
	state, jobErr, err := job.StreamRows(context.Background(), 0, 3, func(row client.Row) error {
		got = append(got, row.Cell(0))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if state != "done" || jobErr != nil {
		t.Fatalf("trailer = %q / %v, want done / nil", state, jobErr)
	}
	want := []string{"a", "b", "c", "d", "e"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed %v, want %v (no duplicates, no gaps)", got, want)
	}
	if n := atomic.LoadInt32(&requests); n != 2 {
		t.Fatalf("requests = %d, want 2 (one drop, one reconnect)", n)
	}
}

// TestClientStreamRowsGivesUp: a stream that never produces a trailer
// exhausts its reconnect budget and surfaces a transport error.
func TestClientStreamRowsGivesUp(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Always drop without a trailer.
	}))
	defer ts.Close()
	c := client.New(ts.URL, client.WithPollInterval(time.Millisecond))
	_, _, err := c.Job("j1").StreamRows(context.Background(), 0, 2, func(client.Row) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "did not recover after 2 reconnects") {
		t.Fatalf("err = %v, want reconnect exhaustion", err)
	}
}

func TestClientCancelMidCrowdWait(t *testing.T) {
	ts, eng := testServer(t, 87, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := client.New(ts.URL)

	// Pose as a foreign session's unresolved in-flight comparison, so the
	// job is deterministically parked mid-crowd-wait.
	cs := workload.NewCompanies(1, 87)
	l := cs.List[0].Canonical
	r := cs.List[0].Variants[len(cs.List[0].Variants)-1]
	leader := eng.Cache().ClaimEqual("", l, r)
	if !leader.Leader {
		t.Fatal("test setup: expected to lead the claim")
	}
	defer leader.Abandon()

	job, err := c.Submit(ctx, "SELECT id FROM Pair WHERE a ~= b")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if st, err := job.Status(ctx); err != nil || st.Terminal() {
		t.Fatalf("job should be parked: %+v %v", st, err)
	}
	if _, err := job.Cancel(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := job.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "cancelled" {
		t.Fatalf("state = %s (err %v)", st.State, st.Error)
	}
	if n := eng.Cache().InFlight(); n != 1 {
		t.Errorf("in-flight claims = %d, want 1 (the foreign leader)", n)
	}
}
