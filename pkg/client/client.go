// Package client is the public Go SDK for the crowddbd Jobs API (v1).
//
// Queries run as asynchronous jobs: Submit returns a typed Job handle
// whose Rows iterator streams partial results while the crowd is still
// working, Wait polls to the terminal state, and Cancel stops the query
// mid-crowd-wait (the server stops posting new HITs and settles the
// budget for work already paid).
//
// Quickstart:
//
//	c := client.New("http://localhost:8090")
//	job, _ := c.Submit(ctx, "SELECT title FROM Talk ORDER BY CROWDORDER(title, 'better?');")
//	it, _ := job.Rows(ctx)
//	for it.Next() {
//	    fmt.Println(it.Row())
//	}
//	st, _ := job.Wait(ctx)
//	fmt.Println(st.State, st.SpentCents)
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client talks to one crowddbd server. It is safe for concurrent use
// once configured; CreateSession mutates the bound session and is not.
type Client struct {
	base    string
	hc      *http.Client
	session string
	// pollInterval paces Wait's job polling.
	pollInterval time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (timeouts, proxies, tests).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithSession binds an existing server session id to the client.
func WithSession(id string) Option { return func(c *Client) { c.session = id } }

// WithPollInterval tunes Wait's poll pacing (default 50ms).
func WithPollInterval(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.pollInterval = d
		}
	}
}

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8090").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:         strings.TrimRight(baseURL, "/"),
		hc:           &http.Client{},
		pollInterval: 50 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Error is a coded server error (the wire contract's stable part).
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Stats mirrors the server's per-statement crowd counters.
type Stats struct {
	RowsScanned      int `json:"RowsScanned"`
	ProbeRequests    int `json:"ProbeRequests"`
	NewTupleRequests int `json:"NewTupleRequests"`
	Comparisons      int `json:"Comparisons"`
	CacheHits        int `json:"CacheHits"`
	SharedFlights    int `json:"SharedFlights"`
	BudgetDenied     int `json:"BudgetDenied"`
}

// JobStatus is the v1 job resource.
type JobStatus struct {
	ID               string   `json:"id"`
	State            string   `json:"state"`
	Session          string   `json:"session"`
	Columns          []string `json:"columns"`
	RowsEmitted      int      `json:"rows_emitted"`
	Affected         int      `json:"affected"`
	Plan             string   `json:"plan"`
	Warnings         []string `json:"warnings"`
	StatementsDone   int      `json:"statements_done"`
	Stats            Stats    `json:"stats"`
	PredictedCents   float64  `json:"predicted_cents"`
	PredictedSeconds float64  `json:"predicted_seconds"`
	SpentCents       float64  `json:"spent_cents"`
	ActualCents      float64  `json:"actual_cents"`
	Error            *Error   `json:"error"`
}

// Terminal reports whether the job has reached a final state
// (interrupted is reached only across a server restart, when a job
// found mid-flight in the durable journal could not be resumed).
func (s *JobStatus) Terminal() bool {
	switch s.State {
	case "done", "failed", "cancelled", "interrupted":
		return true
	}
	return false
}

// Err returns the job's failure as an error (nil while running, done, or
// cancelled without a coded reason).
func (s *JobStatus) Err() error {
	if s.Error != nil {
		return s.Error
	}
	return nil
}

// SessionInfo mirrors the server's session resource.
type SessionInfo struct {
	ID         string `json:"id"`
	Queries    int    `json:"queries"`
	BudgetLeft int    `json:"budget_left"`
	Stats      Stats  `json:"stats"`
}

// do issues one JSON request; a coded server error body comes back as
// *Error, transport failures as plain errors.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var er struct {
			Error *Error `json:"error"`
		}
		if json.Unmarshal(data, &er) == nil && er.Error != nil {
			return er.Error
		}
		return fmt.Errorf("client: %s %s: HTTP %d: %s", method, path, resp.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// CreateSession opens a server session with the given crowd-comparison
// budget (0 = server default, negative = unlimited) and binds it to the
// client: subsequent Submit calls run on it.
func (c *Client) CreateSession(ctx context.Context, budget int) (*SessionInfo, error) {
	var info SessionInfo
	if err := c.do(ctx, http.MethodPost, "/session", map[string]int{"budget": budget}, &info); err != nil {
		return nil, err
	}
	c.session = info.ID
	return &info, nil
}

// Session returns the bound session id ("" = anonymous).
func (c *Client) Session() string { return c.session }

// SessionStatus fetches the bound session's resource.
func (c *Client) SessionStatus(ctx context.Context) (*SessionInfo, error) {
	if c.session == "" {
		return nil, fmt.Errorf("client: no session bound")
	}
	var info SessionInfo
	if err := c.do(ctx, http.MethodGet, "/session/"+url.PathEscape(c.session), nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// CloseSession closes the bound session. The server cancels the
// session's in-flight jobs (they fail with session_closed).
func (c *Client) CloseSession(ctx context.Context) error {
	if c.session == "" {
		return nil
	}
	err := c.do(ctx, http.MethodDelete, "/session/"+url.PathEscape(c.session), nil, nil)
	if err == nil {
		c.session = ""
	}
	return err
}

// Healthy reports whether the server answers /healthz affirmatively.
func (c *Client) Healthy(ctx context.Context) bool {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil) == nil
}

// Stats fetches the server's full /stats report as raw JSON (its shape
// grows; callers pick what they need).
func (c *Client) Stats(ctx context.Context) (json.RawMessage, error) {
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/stats", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// ---------------------------------------------------------------------------
// Jobs

// Job is a typed handle on one submitted query job.
type Job struct {
	c  *Client
	id string
}

// Submit starts a CrowdSQL script as an asynchronous job on the bound
// session and returns immediately with its handle.
func (c *Client) Submit(ctx context.Context, sql string) (*Job, error) {
	var st JobStatus
	req := map[string]string{"sql": sql}
	if c.session != "" {
		req["session"] = c.session
	}
	if err := c.do(ctx, http.MethodPost, "/v1/queries", req, &st); err != nil {
		return nil, err
	}
	return &Job{c: c, id: st.ID}, nil
}

// Job returns a handle for an already-submitted job id — reattaching to
// a query after a client or server restart (durable jobs keep the
// resource, its rows, and its offsets across both).
func (c *Client) Job(id string) *Job { return &Job{c: c, id: id} }

// ID returns the server-side job id.
func (j *Job) ID() string { return j.id }

// Status polls the job resource once.
func (j *Job) Status(ctx context.Context) (*JobStatus, error) {
	var st JobStatus
	if err := j.c.do(ctx, http.MethodGet, "/v1/queries/"+url.PathEscape(j.id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls until the job reaches a terminal state (or ctx fires) and
// returns the final status. A failed job is not an error at the
// transport level — check status.State / status.Err().
func (j *Job) Wait(ctx context.Context) (*JobStatus, error) {
	for {
		st, err := j.Status(ctx)
		if err != nil {
			return nil, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-time.After(j.c.pollInterval):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Cancel requests cancellation and returns the job's current snapshot;
// poll (or Wait) for the terminal state. Cancel is idempotent.
func (j *Job) Cancel(ctx context.Context) (*JobStatus, error) {
	var st JobStatus
	if err := j.c.do(ctx, http.MethodDelete, "/v1/queries/"+url.PathEscape(j.id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Row is one streamed result row; nil cells are SQL NULL / CNULL.
type Row []*string

// Cell renders the i-th cell ("NULL" for nil).
func (r Row) Cell(i int) string {
	if i >= len(r) || r[i] == nil {
		return "NULL"
	}
	return *r[i]
}

// RowIter streams a job's result rows as the server produces them
// (NDJSON over a chunked response). Always Close it; Err reports
// transport errors, FinalState/FinalError the job's outcome trailer.
type RowIter struct {
	body   io.ReadCloser
	sc     *bufio.Scanner
	cur    Row
	err    error
	state  string
	jobErr *Error
	done   bool
}

// Rows opens the job's partial-result stream from the given offset
// (usually 0). The iterator ends when the job reaches a terminal state.
func (j *Job) Rows(ctx context.Context) (*RowIter, error) { return j.RowsFrom(ctx, 0) }

// RowsFrom is Rows starting at row index n (resuming a dropped stream).
func (j *Job) RowsFrom(ctx context.Context, n int) (*RowIter, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/queries/%s/rows?from=%d", j.c.base, url.PathEscape(j.id), n), nil)
	if err != nil {
		return nil, err
	}
	resp, err := j.c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		var er struct {
			Error *Error `json:"error"`
		}
		if json.Unmarshal(data, &er) == nil && er.Error != nil {
			return nil, er.Error
		}
		return nil, fmt.Errorf("client: rows: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	return &RowIter{body: resp.Body, sc: sc}, nil
}

// Next advances to the next row, blocking until the server streams one
// (or the job ends). It returns false at the end of the stream.
func (it *RowIter) Next() bool {
	if it.done || it.err != nil {
		return false
	}
	for it.sc.Scan() {
		line := bytes.TrimSpace(it.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if line[0] == '[' {
			var row Row
			if err := json.Unmarshal(line, &row); err != nil {
				it.err = err
				return false
			}
			it.cur = row
			return true
		}
		// Trailer object: the job's terminal state.
		var trailer struct {
			State string `json:"state"`
			Error *Error `json:"error"`
		}
		if err := json.Unmarshal(line, &trailer); err != nil {
			it.err = err
			return false
		}
		it.state, it.jobErr, it.done = trailer.State, trailer.Error, true
		return false
	}
	it.err = it.sc.Err()
	it.done = true
	return false
}

// Row returns the current row (valid after a true Next).
func (it *RowIter) Row() Row { return it.cur }

// Err reports a stream/transport error (nil on a clean end).
func (it *RowIter) Err() error { return it.err }

// FinalState returns the job's terminal state from the stream trailer
// ("" when the stream ended without one).
func (it *RowIter) FinalState() string { return it.state }

// FinalError returns the job's coded error from the trailer, if any.
func (it *RowIter) FinalError() *Error { return it.jobErr }

// Close releases the stream.
func (it *RowIter) Close() error { return it.body.Close() }

// StreamRows streams the job's rows from offset n through onRow, in
// order, transparently re-opening the stream with from=<next unseen
// offset> whenever it drops without a terminal trailer — a dropped
// connection, or a server restart mid-query. A durable-jobs server keeps
// row offsets stable across restarts, so the resumed stream carries no
// duplicates and no gaps. Up to attempts reconnects are made (<=0
// defaults to 3), paced by the client's poll interval; a coded server
// error (unknown job, unknown session) aborts immediately. It returns
// the job's terminal state and coded error from the trailer.
func (j *Job) StreamRows(ctx context.Context, n, attempts int, onRow func(Row) error) (string, *Error, error) {
	if attempts <= 0 {
		attempts = 3
	}
	next := n
	var lastErr error
	for try := 0; try <= attempts; try++ {
		if try > 0 {
			select {
			case <-time.After(j.c.pollInterval):
			case <-ctx.Done():
				return "", nil, ctx.Err()
			}
		}
		it, err := j.RowsFrom(ctx, next)
		if err != nil {
			var coded *Error
			if errors.As(err, &coded) {
				return "", nil, err
			}
			lastErr = err // transport-level: the server may still be restarting
			continue
		}
		for it.Next() {
			if err := onRow(it.Row()); err != nil {
				it.Close() //nolint:errcheck // caller abort wins
				return "", nil, err
			}
			next++
		}
		state, jobErr := it.FinalState(), it.FinalError()
		err = it.Err()
		it.Close() //nolint:errcheck // stream is already drained
		if state != "" {
			return state, jobErr, nil
		}
		if err == nil {
			err = fmt.Errorf("client: stream ended without a terminal state")
		}
		lastErr = err
		if cerr := ctx.Err(); cerr != nil {
			return "", nil, cerr
		}
	}
	return "", nil, fmt.Errorf("client: stream did not recover after %d reconnects: %w", attempts, lastErr)
}

// ---------------------------------------------------------------------------
// Convenience

// Result is a fully collected query outcome.
type Result struct {
	Columns  []string
	Rows     []Row
	Affected int
	Plan     string
	Warnings []string
	Status   *JobStatus
}

// Query submits sql, streams every row, waits for the terminal state,
// and returns the collected result. A failed (or session_closed) job
// comes back as its coded *Error.
func (c *Client) Query(ctx context.Context, sql string) (*Result, error) {
	job, err := c.Submit(ctx, sql)
	if err != nil {
		return nil, err
	}
	it, err := job.Rows(ctx)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var rows []Row
	for it.Next() {
		rows = append(rows, it.Row())
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	st, err := job.Wait(ctx)
	if err != nil {
		return nil, err
	}
	if st.State != "done" {
		if st.Error != nil {
			return nil, st.Error
		}
		return nil, fmt.Errorf("client: job %s ended %s", job.ID(), st.State)
	}
	return &Result{
		Columns:  st.Columns,
		Rows:     rows,
		Affected: st.Affected,
		Plan:     st.Plan,
		Warnings: st.Warnings,
		Status:   st,
	}, nil
}
