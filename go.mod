module crowddb

go 1.23
