module crowddb

go 1.24
