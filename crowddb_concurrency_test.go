package crowddb

// Concurrency stress: one DB handle, many goroutines issuing crowd-backed
// queries at once. The engine serializes statements internally (core's
// Engine.ExecStmt holds the engine mutex for the whole statement), so
// these tests pin down the public-API safety contract: no data race on
// the handle, no deadlock between the engine mutex and the task
// scheduler's clock-driver handoff, and correct results under contention.
// Genuinely concurrent scheduler coverage lives in
// internal/taskmgr/async_test.go (TestSubmitStorm).

import (
	"fmt"
	"sync"
	"testing"

	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

func TestParallelCrowdQueriesOneDB(t *testing.T) {
	conf := workload.NewConference(24, 1)
	db, err := Open(Config{
		Platform: NewAMTPlatform(1),
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE Talk (
		title STRING PRIMARY KEY, abstract CROWD STRING, nb_attendees CROWD INTEGER )`); err != nil {
		t.Fatal(err)
	}
	for _, talk := range conf.Talks {
		if _, err := db.Exec("INSERT INTO Talk (title) VALUES (" +
			sqltypes.NewString(talk.Title).SQLLiteral() + ")"); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*3)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < 3; q++ {
				talk := conf.Talks[(w*3+q)%len(conf.Talks)]
				res, err := db.Query("SELECT abstract FROM Talk WHERE title = " +
					sqltypes.NewString(talk.Title).SQLLiteral())
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 1 {
					errs <- fmt.Errorf("talk %q: %d rows", talk.Title, len(res.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every queried talk's abstract must now be memorized: re-reading is
	// crowd-free.
	res, err := db.Query("SELECT abstract FROM Talk")
	if err != nil {
		t.Fatal(err)
	}
	filled := 0
	for _, row := range res.Rows {
		if !row[0].IsUnknown() {
			filled++
		}
	}
	if filled < workers*3/2 {
		t.Errorf("only %d abstracts filled after %d parallel probe queries", filled, workers*3)
	}
}

// TestParallelMixedStatements mixes crowd reads with plain DML from
// parallel goroutines — the engine must serialize statements without
// deadlocking against the task scheduler.
func TestParallelMixedStatements(t *testing.T) {
	conf := workload.NewConference(12, 2)
	db, err := Open(Config{
		Platform: NewAMTPlatform(2),
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE Talk (
		title STRING PRIMARY KEY, room STRING, abstract CROWD STRING )`); err != nil {
		t.Fatal(err)
	}
	for _, talk := range conf.Talks {
		if _, err := db.Exec("INSERT INTO Talk (title) VALUES (" +
			sqltypes.NewString(talk.Title).SQLLiteral() + ")"); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			talk := conf.Talks[w%len(conf.Talks)]
			lit := sqltypes.NewString(talk.Title).SQLLiteral()
			if _, err := db.Query("SELECT abstract FROM Talk WHERE title = " + lit); err != nil {
				errs <- err
			}
			if _, err := db.Exec(fmt.Sprintf(
				"UPDATE Talk SET room = 'Room %d' WHERE title = %s", w+1, lit)); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
